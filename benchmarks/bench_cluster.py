"""Cluster front door — shard-count scaling and p99 under rebalance.

Not a paper figure: the paper consolidates tenants into *one* database;
this benchmark measures the subsystem that scales that design out — the
asyncio front door over tenant-sharded engines.

A seeded swarm of concurrent sessions (one TCP connection per tenant,
mixed insert/select traffic) drives the cluster at shard counts 1, 2,
and 4.  Each shard's worker thread sleeps ``STORAGE_LATENCY_MS`` per
write with the GIL released — the simulated stable-storage commit
(production fsync / replication RTT; the local research engine's real
fsync is ~0.1 ms, far too fast to need overlapping).  What the harness
measures is therefore exactly what the architecture provides: with one
shard every storage stall serializes behind one worker; with four, the
front door overlaps stalls across shards.  The gate is >= 3x aggregate
throughput at 4 shards vs 1 (single-core container; the engine CPU is
the serial floor).

The second section repeats the 2-shard swarm while a busy tenant is
live-rebalanced mid-run: the gate is zero lost/duplicated rows and a
bounded p99 (the cut-over pause is one capture-log tail behind the
tenant's session lock).

Results land in ``benchmarks/results/BENCH_cluster.json``.
"""

import asyncio
import json
import pathlib
import random
import time

import pytest

from repro.cluster import Cluster, ClusterClient, ShardOptions

from tests.core.conftest import account_table

RESULTS_PATH = (
    pathlib.Path(__file__).parent / "results" / "BENCH_cluster.json"
)

SEED = 20080608
SHARD_COUNTS = (1, 2, 4)
SESSIONS = 16  # concurrent sessions, one tenant each
OPS_PER_SESSION = 40
STORAGE_LATENCY_MS = 4.0
WRITE_FRACTION = 0.5

SCALING_GATE = 3.0
REBALANCE_P99_GATE_MS = 250.0


def build_cluster(shard_count: int) -> Cluster:
    cluster = Cluster(
        shards=shard_count,
        options=ShardOptions(storage_latency_ms=STORAGE_LATENCY_MS),
    )
    cluster.define_table(account_table())
    names = list(cluster.shards)
    for tenant in range(SESSIONS):
        # Round-robin pins: the swarm should measure shard scaling,
        # not the luck of the hash ring at tiny tenant counts.
        cluster.catalog.pin(tenant, names[tenant % shard_count])
        cluster.create_tenant(tenant)
    return cluster


async def session(
    port: int, tenant: int, rng: random.Random, latencies: list
) -> int:
    """One tenant's connection: seeded mixed traffic; returns rows
    inserted."""
    client = ClusterClient("127.0.0.1", port)
    await client.connect()
    inserted = 0
    try:
        for op in range(OPS_PER_SESSION):
            started = time.perf_counter()
            if rng.random() < WRITE_FRACTION:
                await client.insert(
                    tenant,
                    "account",
                    {"aid": op, "name": f"t{tenant}-{op}"},
                )
                inserted += 1
            else:
                await client.execute(
                    tenant, "SELECT COUNT(*) FROM account"
                )
            latencies.append((time.perf_counter() - started) * 1000.0)
            if rng.random() < 0.2:
                await asyncio.sleep(0)
    finally:
        await client.close()
    return inserted


def percentile(samples: list, q: float) -> float:
    ordered = sorted(samples)
    return ordered[min(len(ordered) - 1, int(q * len(ordered)))]


def run_swarm(shard_count: int, *, mover=None) -> dict:
    """Drive the full swarm; optionally run ``mover(cluster)``
    concurrently (the live-rebalance section)."""
    cluster = build_cluster(shard_count)

    async def go():
        server = cluster.serve()
        await server.start()
        latencies: list[float] = []
        try:
            tasks = [
                session(
                    server.port,
                    tenant,
                    random.Random(SEED + tenant),
                    latencies,
                )
                for tenant in range(SESSIONS)
            ]
            if mover is not None:
                tasks.append(mover(cluster))
            started = time.perf_counter()
            results = await asyncio.gather(*tasks)
            elapsed = time.perf_counter() - started
        finally:
            await server.stop()
        inserted = results[:SESSIONS]
        # Integrity: every acknowledged insert is present exactly once.
        for tenant in range(SESSIONS):
            counts = cluster.shards[
                cluster.shard_of(tenant)
            ].mtd.tenant_row_counts(tenant)
            assert counts == {"account": inserted[tenant]}, (
                f"tenant {tenant}: acked {inserted[tenant]} rows, "
                f"found {counts}"
            )
        total_ops = SESSIONS * OPS_PER_SESSION
        return {
            "shards": shard_count,
            "total_ops": total_ops,
            "elapsed_s": elapsed,
            "throughput_ops_s": total_ops / elapsed,
            "p50_ms": percentile(latencies, 0.50),
            "p99_ms": percentile(latencies, 0.99),
            "move": results[SESSIONS] if mover is not None else None,
        }

    try:
        return asyncio.run(go())
    finally:
        cluster.close()


async def _move_busiest(cluster: Cluster) -> dict:
    """Rebalance tenant 0 once the swarm is in full swing."""
    await asyncio.sleep(0.15)
    source = cluster.shard_of(0)
    dest = next(n for n in cluster.shards if n != source)
    stats = await cluster.rebalance(0, dest, copy_chunk=16)
    stats["redirects"] = cluster.metrics.get(
        "cluster.router.redirects"
    ).value
    return stats


@pytest.fixture(scope="module")
def measurements():
    scaling = {n: run_swarm(n) for n in SHARD_COUNTS}
    rebalance = run_swarm(2, mover=_move_busiest)
    results = {
        "config": {
            "sessions": SESSIONS,
            "ops_per_session": OPS_PER_SESSION,
            "write_fraction": WRITE_FRACTION,
            "storage_latency_ms": STORAGE_LATENCY_MS,
            "seed": SEED,
        },
        "scaling": {str(n): m for n, m in scaling.items()},
        "speedup_4v1": (
            scaling[4]["throughput_ops_s"] / scaling[1]["throughput_ops_s"]
        ),
        "rebalance_swarm": rebalance,
    }
    RESULTS_PATH.parent.mkdir(exist_ok=True)
    RESULTS_PATH.write_text(json.dumps(results, indent=2) + "\n")
    return results


class TestClusterScaling:
    def test_report(self, benchmark, measurements, report):
        benchmark.pedantic(lambda: None, rounds=1)
        lines = [
            f"Cluster swarm: {SESSIONS} sessions x {OPS_PER_SESSION} ops, "
            f"{WRITE_FRACTION:.0%} writes, "
            f"{STORAGE_LATENCY_MS:.0f} ms simulated commit latency",
            f"{'shards':>7} {'ops/s':>8} {'p50 ms':>7} {'p99 ms':>7}",
        ]
        for n in SHARD_COUNTS:
            m = measurements["scaling"][str(n)]
            lines.append(
                f"{n:>7} {m['throughput_ops_s']:>8.0f} "
                f"{m['p50_ms']:>7.1f} {m['p99_ms']:>7.1f}"
            )
        lines.append(
            f"speedup 4 vs 1 shard: {measurements['speedup_4v1']:.2f}x"
        )
        reb = measurements["rebalance_swarm"]
        lines.append(
            "2-shard swarm with live rebalance: "
            f"{reb['throughput_ops_s']:.0f} ops/s, "
            f"p99 {reb['p99_ms']:.1f} ms, "
            f"{reb['move']['rows_copied']} rows moved, "
            f"{reb['move']['entries_shipped']} entries shipped, "
            f"{reb['move']['redirects']:.0f} redirects"
        )
        report("BENCH_cluster", "\n".join(lines))

    def test_scaling_gate(self, measurements):
        """4 shards must deliver >= 3x the 1-shard throughput."""
        assert measurements["speedup_4v1"] >= SCALING_GATE

    def test_monotonic_scaling(self, measurements):
        tputs = [
            measurements["scaling"][str(n)]["throughput_ops_s"]
            for n in SHARD_COUNTS
        ]
        assert tputs == sorted(tputs), "adding shards must not hurt"

    def test_rebalance_p99_bounded(self, measurements):
        """Live rebalance keeps tail latency bounded (and the swarm's
        integrity assertion already proved zero lost/duplicated rows)."""
        reb = measurements["rebalance_swarm"]
        assert reb["move"]["dest"] is not None
        assert reb["p99_ms"] <= REBALANCE_P99_GATE_MS

    def test_json_artifact(self, measurements):
        persisted = json.loads(RESULTS_PATH.read_text())
        assert persisted["speedup_4v1"] == measurements["speedup_4v1"]
