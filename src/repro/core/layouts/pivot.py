"""Pivot Table Layout — Figure 4(d).

Each field of each logical row becomes its own physical row, keyed by
(Tenant, Table, Col, Row), with one data-bearing column per Pivot
Table.  We keep typing by maintaining one Pivot Table per type family
("a better approach however, in that it does not circumvent typing, is
to have multiple Pivot Tables with different types"), and optionally a
second, value-indexed table per family for columns that request an
index ("two Pivot Tables can be created for each type: one with indexes
and one without").

Reconstruction of an n-column table costs (n-1) aligning joins — the
overhead Figure 9's narrowest configuration exhibits.
"""

from __future__ import annotations

from ..schema import LogicalColumn
from .base import (
    ColumnLoc,
    Fragment,
    Layout,
    ROW,
    SLOT_DDL,
    slot_cast,
    slot_family,
    slot_store,
)


class PivotTableLayout(Layout):
    name = "pivot"
    shares_statements = True
    default_storage = "columnar"

    def physical_name(self, family: str, *, indexed: bool) -> str:
        return f"pivot_{family}" + ("_ix" if indexed else "")

    def _ensure_pivot(self, family: str, *, indexed: bool) -> str:
        physical = self.physical_name(family, indexed=indexed)
        ddl = (
            f"CREATE TABLE {physical} ("
            "tenant INTEGER NOT NULL, tbl INTEGER NOT NULL, "
            f"col INTEGER NOT NULL, {ROW} INTEGER NOT NULL"
            f"{self._alive_ddl()}, val {SLOT_DDL[family]})"
        )
        indexes = [
            f"CREATE UNIQUE INDEX {physical}_tcr ON {physical} "
            f"(tenant, tbl, col, {ROW})"
        ]
        if indexed:
            indexes.append(
                f"CREATE INDEX {physical}_vtcr ON {physical} "
                f"(val, tenant, tbl, col, {ROW})"
            )
        self._ensure_table(physical, ddl, indexes)
        return physical

    def _fragment_for(
        self, tenant_id: int, table_name: str, column: LogicalColumn
    ) -> Fragment:
        family = slot_family(column.type)
        physical = self._ensure_pivot(family, indexed=column.indexed)
        return Fragment(
            table=physical,
            meta=(
                ("tenant", tenant_id),
                ("tbl", self.schema.table_id(table_name)),
                ("col", self.columns.column_id(table_name, column.name)),
            ),
            columns=(
                (
                    column.lname,
                    ColumnLoc(
                        "val",
                        cast=slot_cast(column.type),
                        store=slot_store(column.type),
                    ),
                ),
            ),
            row_column=ROW,
        )

    def fragments(self, tenant_id: int, table_name: str) -> list[Fragment]:
        logical = self.schema.logical_table(tenant_id, table_name)
        return [
            self._fragment_for(tenant_id, table_name, column)
            for column in logical.columns
        ]
