"""Dynamic concurrency & durability sanitizers (the ``CON`` rules).

The static passes prove properties of *emitted statements*; the
sanitizers instrument the *running engine* — the FoundationDB idea of
running the real system under checking rather than a model of it.  A
:class:`Sanitizer` is attached by ``Database(sanitize=True)`` (or the
``REPRO_SANITIZE=1`` environment variable) and receives callbacks from
the lock table, the buffer pool, the heap/column stores, the
transaction manager, and the durability manager:

* **Lockset race detection (CON001)** — the Eraser algorithm: every
  shared resource (a heap/columnstore row here) keeps a candidate set
  of locks, refined on each access to the intersection with the locks
  the accessing session holds.  A resource written by two sessions
  whose candidate set becomes empty has no lock consistently protecting
  it — a data race once execution stops being cooperative.  Sessions
  are identified by the lock table's session ids; engine-internal work
  runs as session 0, so single-session usage never reports.
* **Write-ahead protocol (CON002/CON003)** — every statement that
  dirties a DATA page must append at least one logical redo record
  before its commit terminal, and no dirty page may reach the page
  store with an LSN beyond the flushed WAL tail.  The ``skip-wal-append``
  seeded mutation (a transaction manager that "forgets" its redo
  records) exists to prove CON002 fires.
* **Resource leaks (CON004/CON005/CON006)** — buffer-pool pins still
  held at a statement boundary, lock-table sessions never released by
  ``release_session``, and a transaction still open when the database
  closes.

Findings accumulate in an :class:`AnalysisReport` and feed the
``analysis.rule.CON*`` metrics as they are found; nothing raises — the
report is checked by ``python -m repro.analysis --sanitize`` and by
tests, so instrumented suites run unchanged.
"""

from __future__ import annotations

import os
import time
from contextlib import contextmanager
from typing import TYPE_CHECKING, Any, Hashable, Iterator

from .findings import AnalysisReport, Finding

if TYPE_CHECKING:  # pragma: no cover
    from ..engine.database import Database

#: Environment switch honoured by ``Database()`` when ``sanitize`` is
#: not passed explicitly.
SANITIZE_ENV = "REPRO_SANITIZE"


def env_sanitize_enabled() -> bool:
    """True when ``REPRO_SANITIZE`` requests instrumentation."""
    return os.environ.get(SANITIZE_ENV, "") not in ("", "0")


# -- Eraser lockset state ---------------------------------------------------

_VIRGIN = 0  #: never accessed
_EXCLUSIVE = 1  #: accessed by exactly one session so far
_SHARED = 2  #: read by several sessions, never written since shared
_SHARED_MODIFIED = 3  #: written while shared: lockset violations report


class _ResourceState:
    """Per-resource Eraser state: owner, phase, candidate lockset."""

    __slots__ = ("state", "owner", "lockset", "reported")

    def __init__(self, owner: int) -> None:
        self.state = _EXCLUSIVE
        self.owner = owner
        self.lockset: frozenset[Hashable] | None = None
        self.reported = False


class Sanitizer:
    """Dynamic checker state for one :class:`Database`.

    All callbacks are cheap no-state-change paths when nothing
    interesting happened; the engine guards every call site with an
    ``is not None`` check so un-instrumented databases pay one attribute
    load at most.
    """

    def __init__(self, metrics: Any = None) -> None:
        self.report = AnalysisReport()
        self._metrics = metrics
        self._db: "Database" | None = None
        #: The session whose work the engine is currently executing.
        #: Cooperative scheduling means "the last session to acquire a
        #: lock" — the testbed and the stress suites acquire before they
        #: execute.  Session 0 is the engine-internal default.
        self.current_session = 0
        #: session id -> resources currently held (from the lock table).
        self._locks_held: dict[int, set[Hashable]] = {}
        #: Eraser state per shared resource.
        self._resources: dict[Hashable, _ResourceState] = {}
        #: DATA-page mutations / logical row records this statement.
        self._data_dirties = 0
        self._wal_row_records = 0
        #: Pages already reported for pin leaks (report once per page).
        self._pin_reported: set[int] = set()

    # -- wiring ------------------------------------------------------------

    def attach(self, db: "Database") -> None:
        """Hook every subsystem of ``db`` up to this sanitizer."""
        self._db = db
        db.locks.sanitizer = self
        db.pool.sanitizer = self
        db.transactions.sanitizer = self
        if db.durability is not None:
            db.durability.sanitizer = self

    @property
    def findings(self) -> int:
        return len(self.report.findings)

    def _report(self, rule_id: str, message: str, locus: str = "") -> None:
        self.report.add(Finding(rule_id, message, locus))
        if self._metrics is not None:
            self._metrics.counter("analysis.sanitizer.findings").inc()
            self._metrics.counter(f"analysis.rule.{rule_id}").inc()

    # -- session / lock tracking ------------------------------------------

    def set_session(self, session_id: int) -> None:
        """Explicitly enter a session context (tests / harnesses that
        do not route everything through the lock table)."""
        self.current_session = session_id

    @contextmanager
    def session(self, session_id: int) -> Iterator[None]:
        previous = self.current_session
        self.current_session = session_id
        try:
            yield
        finally:
            self.current_session = previous

    def on_lock_acquire(
        self, session_id: int, resource: Hashable, exclusive: bool
    ) -> None:
        self.current_session = session_id
        self._locks_held.setdefault(session_id, set()).add(resource)

    def on_lock_release(self, session_id: int) -> None:
        self._locks_held.pop(session_id, None)
        if self.current_session == session_id:
            self.current_session = 0

    # -- lockset race detection (CON001) ----------------------------------

    def on_row_access(self, resource: Hashable, *, write: bool) -> None:
        """One session touched one shared row (Eraser state machine)."""
        session = self.current_session
        state = self._resources.get(resource)
        if state is None:
            self._resources[resource] = _ResourceState(session)
            return
        if state.state == _EXCLUSIVE:
            if state.owner == session:
                return
            # Second session: the candidate lockset starts as whatever
            # the new accessor holds (first-access locks are unknowable
            # after the fact; Eraser refines from here).
            state.lockset = frozenset(self._locks_held.get(session, ()))
            state.state = _SHARED_MODIFIED if write else _SHARED
        else:
            held = self._locks_held.get(session, ())
            assert state.lockset is not None
            state.lockset = state.lockset & frozenset(held)
            if write:
                state.state = _SHARED_MODIFIED
        if (
            state.state == _SHARED_MODIFIED
            and not state.lockset
            and not state.reported
        ):
            state.reported = True
            self._report(
                "CON001",
                f"resource {resource!r} written by concurrent sessions "
                "with no common lock",
                f"session={session}",
            )

    # -- write-ahead protocol (CON002/CON003) ------------------------------

    def _replaying(self) -> bool:
        db = self._db
        return (
            db is not None
            and db.durability is not None
            and db.durability.replaying
        )

    def on_page_dirty(self, page: Any) -> None:
        """A resident page was mutated (``BufferPool.mark_dirty``)."""
        if page.kind.value != "data" or self._replaying():
            return
        self._data_dirties += 1

    def on_wal_row_record(self) -> None:
        """A logical redo record (ins/del/upd) reached the WAL."""
        self._wal_row_records += 1

    def on_page_writeback(self, page: Any) -> None:
        """A dirty page is about to reach the page store; the WAL rule
        must already have flushed the log through its LSN."""
        db = self._db
        if db is None or db.durability is None:
            return
        flushed = db.durability.wal.flushed_lsn
        if page.lsn > flushed:
            self._report(
                "CON003",
                f"page {page.page_id} written back at lsn={page.lsn} "
                f"with WAL flushed only to {flushed}",
                f"segment={page.segment_id}",
            )

    # -- statement boundaries / leaks --------------------------------------

    def on_statement_end(self) -> None:
        """Statement (or transaction-terminal) boundary checks."""
        self.report.checked += 1
        db = self._db
        if (
            db is not None
            and db.durability is not None
            and not db.durability.replaying
            and self._data_dirties > 0
            and self._wal_row_records == 0
        ):
            self._report(
                "CON002",
                f"{self._data_dirties} data-page mutation(s) reached the "
                "statement boundary without a covering WAL append",
                f"session={self.current_session}",
            )
        self._data_dirties = 0
        self._wal_row_records = 0
        if db is not None:
            self._check_pins(db)

    def _check_pins(self, db: "Database") -> None:
        for page_id, frame in db.pool._frames.items():
            if frame.pins > 0 and page_id not in self._pin_reported:
                self._pin_reported.add(page_id)
                self._report(
                    "CON004",
                    f"page {page_id} still pinned ({frame.pins}) at "
                    "statement end",
                )

    def on_close(self, db: "Database") -> None:
        """End-of-life checks, run by ``Database.close``."""
        self.report.checked += 1
        for resource, holders in db.locks._holders.items():
            for session_id in holders:
                self._report(
                    "CON005",
                    f"session {session_id} never released {resource!r} "
                    "(missing release_session)",
                )
        if db.transactions.active:
            self._report("CON006", "transaction still open at close")
        self._check_pins(db)


# -- the CLI scenario -------------------------------------------------------
#
# ``python -m repro.analysis --sanitize`` needs a workload that drives
# every instrumented path with a *correct* locking and logging
# discipline: multi-session locked read-modify-writes, index and scan
# reads, a checkpoint mid-run (write-ahead rule under writeback), a
# rollback, and a clean close.  On an unmutated engine the report must
# come back empty; the ``skip-wal-append`` seeded mutation must make
# CON002 fire.

#: Seeded defect: the transaction manager drops its logical redo
#: records (see ``DurabilityManager.log``).
MUTATE_SKIP_APPEND = "skip-wal-append"

_SESSIONS = 3
_ROUNDS = 8
_ROWS = 4


def run_sanitized_scenario(
    mutate: str | None = None,
) -> tuple[AnalysisReport, float]:
    """Run the scripted sanitizer workload; returns ``(report,
    overhead)`` where overhead is instrumented wall-clock over a
    matching un-instrumented run (the "< 3x" budget the CI gate
    documents)."""
    baseline = _run_scenario(sanitize=False, mutate=None)[1]
    report, sanitized = _run_scenario(sanitize=True, mutate=mutate)
    overhead = sanitized / baseline if baseline > 0 else 1.0
    return report, overhead


def _run_scenario(
    *, sanitize: bool, mutate: str | None
) -> tuple[AnalysisReport, float]:
    import shutil
    import tempfile

    from ..engine.database import Database
    from ..engine.durability import DurabilityOptions

    path = tempfile.mkdtemp(prefix="repro-sanitize-")
    started = time.perf_counter()
    try:
        db = Database(
            path=path,
            sanitize=sanitize,
            durability=DurabilityOptions(mutate=mutate),
        )
        db.execute(
            "CREATE TABLE counters (id INTEGER NOT NULL, value INTEGER NOT NULL)"
        )
        db.execute("CREATE UNIQUE INDEX counters_pk ON counters (id)")
        for row_id in range(_ROWS):
            db.execute("INSERT INTO counters VALUES (?, ?)", [row_id, 0])
        for round_no in range(_ROUNDS):
            for session in range(1, _SESSIONS + 1):
                row_id = (round_no + session) % _ROWS
                db.execute("BEGIN")
                db.locks.acquire(
                    session, ("rows", "counters", row_id), exclusive=True
                )
                current = db.execute(
                    "SELECT value FROM counters WHERE id = ?", [row_id]
                ).scalar()
                db.execute(
                    "UPDATE counters SET value = ? WHERE id = ?",
                    [int(current) + 1, row_id],
                )
                # Every third transaction aborts: the rollback path
                # must log its compensation records too.
                if (round_no + session) % 3 == 0:
                    db.execute("ROLLBACK")
                else:
                    db.execute("COMMIT")
                db.locks.release_session(session)
            if round_no == _ROUNDS // 2:
                # Mid-run checkpoint: dirty frames write back under the
                # WAL rule while the sanitizer watches (CON003 path).
                db.checkpoint()
        # A shared scan.  The reader takes the *same row locks* the
        # writers used (shared mode): Eraser has no lock-granularity
        # model, so a table-level lock would read as a disjoint lockset.
        db.locks.acquire(1, ("table", "counters"), exclusive=False)
        for row_id in range(_ROWS):
            db.locks.acquire(1, ("rows", "counters", row_id), exclusive=False)
        db.execute("SELECT id, value FROM counters WHERE id >= 0")
        db.locks.release_session(1)
        db.close()
        report = (
            db.sanitizer.report if db.sanitizer is not None else AnalysisReport()
        )
        return report, time.perf_counter() - started
    finally:
        shutil.rmtree(path, ignore_errors=True)
