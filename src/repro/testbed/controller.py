"""The Controller and the testbed driver (Section 4).

The Controller deals cards from the shuffled deck to the session with
the earliest simulated clock (event-driven concurrency), collects
response times into the Result Database, strips ramp-up, and rolls the
run up into the Table 2 metrics.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.api import MultiTenantDatabase
from ..engine.database import Database
from ..engine.pager import PageKind
from .actions import ActionClass, ActionExecutor
from .crm import crm_tables
from .deck import CardDeck
from .generator import DataGenerator, TenantDataProfile
from .results import ActionResult, ResultSet, RunMetrics
from .simtime import CostModel
from .variability import VariabilityConfig, distribute_tenants
from .worker import LockOverlap, Session, Worker


@dataclass
class TestbedConfig:
    """One experiment configuration.

    (Not a pytest class, despite the name.)

    Defaults are the documented 1/100-ish scale of the paper's setup
    (10,000 tenants, 1 GB RAM, 40 sessions): the trends of Table 2 /
    Figure 7 depend on the *ratio* of meta-data to buffer-pool memory,
    which the scaling preserves.
    """

    __test__ = False  # not a pytest collection target

    variability: float = 0.0
    tenants: int = 100
    sessions: int = 10
    actions: int = 500
    memory_bytes: int = 10 * 1024 * 1024
    layout: str = "extension"  # §4.1: the testbed models this layout
    data_profile: TenantDataProfile = field(default_factory=TenantDataProfile)
    seed: int = 2008
    ramp_up_fraction: float = 0.1
    cost_model: CostModel = field(default_factory=CostModel)
    layout_options: dict = field(default_factory=dict)
    #: When set, the System Under Test runs on a disk-backed engine
    #: rooted at this directory (WAL + page segments), so testbed runs
    #: can crash and recover; ``None`` keeps the all-in-memory engine.
    db_path: str | None = None
    #: Execution engine for the System Under Test: ``"vectorized"``
    #: (default) or ``"tuple"`` (the reference interpreter).
    execution: str = "vectorized"


class Controller:
    """Deals cards to sessions and collects results."""

    def __init__(
        self,
        worker: Worker,
        deck: CardDeck,
        sessions: list[Session],
    ) -> None:
        self.worker = worker
        self.deck = deck
        self.sessions = sessions
        self.results = ResultSet()

    def run(self) -> ResultSet:
        while True:
            card = self.deck.deal()
            if card is None:
                break
            session = min(self.sessions, key=lambda s: s.clock_ms)
            start = session.clock_ms
            response = self.worker.execute(session, card.action, card.tenant_id)
            self.results.record(
                ActionResult(
                    action=card.action,
                    tenant_id=card.tenant_id,
                    session_id=session.session_id,
                    start_ms=start,
                    response_ms=response,
                )
            )
            session.advance(response)
        return self.results


class Testbed:
    """Builds the System Under Test for one configuration and runs it."""

    __test__ = False  # not a pytest collection target

    def __init__(self, config: TestbedConfig) -> None:
        self.config = config
        self.variability = VariabilityConfig(config.variability, config.tenants)
        self.tenant_instance = distribute_tenants(self.variability)
        self.mtd: MultiTenantDatabase | None = None
        self._pool_before = None

    # -- setup -------------------------------------------------------------

    def setup(self) -> MultiTenantDatabase:
        """Create schema instances, tenants, and load synthetic data."""
        config = self.config
        db = Database(
            memory_bytes=config.memory_bytes,
            path=config.db_path,
            execution=config.execution,
        )
        mtd = MultiTenantDatabase(
            layout=config.layout, db=db, **config.layout_options
        )
        instance_tables = {}
        for instance in range(self.variability.instances):
            tables = crm_tables(instance)
            instance_tables[instance] = tables
            for table in tables:
                mtd.define_table(table)
        generator = DataGenerator(config.seed)
        profile = config.data_profile
        for tenant_id, instance in self.tenant_instance.items():
            mtd.create_tenant(tenant_id)
            generator.load_tenant(
                mtd, tenant_id, instance_tables[instance], profile
            )
        self.mtd = mtd
        return mtd

    # -- running ---------------------------------------------------------------

    def run(self) -> ResultSet:
        if self.mtd is None:
            self.setup()
        config = self.config
        executor = ActionExecutor(
            self.mtd,
            config.data_profile,
            DataGenerator(config.seed),
            self.tenant_instance,
            seed=config.seed + 1,
        )
        worker = Worker(self.mtd, executor, config.cost_model, LockOverlap())
        deck = CardDeck(
            config.actions,
            sorted(self.tenant_instance),
            seed=config.seed + 2,
        )
        sessions = [Session(i) for i in range(config.sessions)]
        # Snapshot the pool counters so metrics() reports the run window
        # (steady-state work), not the data load.
        self._pool_before = self.mtd.db.pool_stats.snapshot()
        controller = Controller(worker, deck, sessions)
        results = controller.run()
        return results.strip_ramp_up(config.ramp_up_fraction)

    # -- metrics --------------------------------------------------------------------

    def metrics(
        self,
        results: ResultSet,
        baseline: dict[ActionClass, float] | None = None,
    ) -> RunMetrics:
        assert self.mtd is not None
        pool = self.mtd.db.pool_stats
        if self._pool_before is not None:
            pool = pool.delta(self._pool_before)
        quantiles = results.quantiles(0.95)
        compliance = (
            results.baseline_compliance(baseline) if baseline else 95.0
        )
        return RunMetrics(
            variability=self.config.variability,
            total_tables=self.variability.total_tables,
            baseline_compliance=compliance,
            throughput_per_minute=results.throughput_per_minute(
                self.config.sessions
            ),
            quantiles_ms=quantiles,
            data_hit_ratio=pool.hit_ratio(PageKind.DATA),
            index_hit_ratio=pool.hit_ratio(PageKind.INDEX),
        )
