"""Static analysis over the engine's and schema-mapping layer's IRs.

Three passes (ISSUE 3):

1. :mod:`repro.analysis.semantic` — name/type resolution of SQL ASTs
   against a physical catalog or a tenant's logical schema, run at
   ``Database.prepare`` time.
2. :mod:`repro.analysis.isolation` — proves every access to a shared
   physical table is dominated by tenant-identifying meta conjuncts.
3. :mod:`repro.analysis.invariants` — layout invariants: fragment
   coverage, type/cast consistency, meta-row agreement, row alignment.

``python -m repro.analysis`` runs all passes over the Figure 5 CRM
testbed at the Table 1 variability levels (see
:mod:`repro.analysis.runner`).

This package is imported by ``repro.engine.database`` (the prepare-time
gate), so the eager imports here must stay below the engine: findings
and semantic only.
"""

from .findings import AnalysisReport, Finding, RULES, Rule, Severity
from .semantic import (
    CatalogProvider,
    LogicalSchemaProvider,
    SemanticAnalyzer,
)

__all__ = [
    "AnalysisReport",
    "CatalogProvider",
    "Finding",
    "LogicalSchemaProvider",
    "RULES",
    "Rule",
    "SemanticAnalyzer",
    "Severity",
]
