"""Tests for the logical multi-tenant schema model."""

import pytest

from repro import Extension, LogicalColumn, LogicalTable
from repro.core.schema import MultiTenantSchema
from repro.engine.errors import CatalogError, UnknownObjectError
from repro.engine.values import INTEGER, varchar

from .conftest import account_table, automotive_extension, healthcare_extension


@pytest.fixture
def schema():
    s = MultiTenantSchema()
    s.add_table(account_table())
    s.add_extension(healthcare_extension())
    s.add_extension(automotive_extension())
    s.add_tenant(17, ("healthcare",))
    s.add_tenant(35)
    s.add_tenant(42, ("automotive",))
    return s


class TestDefinitions:
    def test_duplicate_table_rejected(self, schema):
        with pytest.raises(CatalogError):
            schema.add_table(account_table())

    def test_duplicate_extension_rejected(self, schema):
        with pytest.raises(CatalogError):
            schema.add_extension(healthcare_extension())

    def test_extension_on_missing_table_rejected(self, schema):
        with pytest.raises(UnknownObjectError):
            schema.add_extension(
                Extension("x", "missing", (LogicalColumn("a", INTEGER),))
            )

    def test_extension_column_collision_rejected(self, schema):
        with pytest.raises(CatalogError):
            schema.add_extension(
                Extension("clash", "account", (LogicalColumn("name", INTEGER),))
            )

    def test_duplicate_tenant_rejected(self, schema):
        with pytest.raises(CatalogError):
            schema.add_tenant(17)

    def test_tenant_with_unknown_extension_rejected(self, schema):
        with pytest.raises(UnknownObjectError):
            schema.add_tenant(99, ("nope",))

    def test_duplicate_columns_in_table_rejected(self):
        with pytest.raises(CatalogError):
            LogicalTable(
                "t",
                (LogicalColumn("a", INTEGER), LogicalColumn("A", INTEGER)),
            )

    def test_table_ids_are_stable_and_dense(self, schema):
        assert schema.table_id("account") == 0
        schema.add_table(
            LogicalTable("contact", (LogicalColumn("cid", INTEGER),))
        )
        assert schema.table_id("contact") == 1


class TestTenantViews:
    def test_base_only_tenant_sees_base_columns(self, schema):
        logical = schema.logical_table(35, "account")
        assert [c.lname for c in logical.columns] == ["aid", "name", "opened"]

    def test_extended_tenant_sees_extension_columns(self, schema):
        logical = schema.logical_table(17, "account")
        assert [c.lname for c in logical.columns] == [
            "aid",
            "name",
            "opened",
            "hospital",
            "beds",
        ]

    def test_different_tenants_different_views(self, schema):
        t42 = schema.logical_table(42, "account")
        assert [c.lname for c in t42.columns] == ["aid", "name", "opened", "dealers"]

    def test_column_origin_base(self, schema):
        assert schema.column_origin(17, "account", "name") is None

    def test_column_origin_extension(self, schema):
        origin = schema.column_origin(17, "account", "beds")
        assert origin is not None and origin.name == "healthcare"

    def test_column_origin_unknown_raises(self, schema):
        with pytest.raises(UnknownObjectError):
            schema.column_origin(35, "account", "beds")

    def test_grant_extension_changes_view(self, schema):
        schema.grant_extension(35, "automotive")
        logical = schema.logical_table(35, "account")
        assert logical.has_column("dealers")

    def test_logical_lookup(self, schema):
        lookup = schema.logical_lookup(42)
        assert "dealers" in lookup("account")

    def test_tenants_with_extension(self, schema):
        assert schema.tenants_with_extension("healthcare") == [17]

    def test_remove_tenant(self, schema):
        schema.remove_tenant(35)
        with pytest.raises(UnknownObjectError):
            schema.tenant(35)
