"""Property-based equivalence across ALL Figure-4 layouts.

Stronger sibling of ``test_layout_equivalence``: here the *schema* is
random too — random column sets, optional random extension, random
per-tenant subscriptions — and the workload mixes inserts, updates,
deletes, and a variety of SELECT shapes (projections, predicates,
aggregates).  Every layout in the registry must return identical logical
results for every query; scenarios without an extension additionally
include the Basic layout (which the paper notes cannot represent
extensions at all).

The suite is deterministic: ``derandomize=True`` makes hypothesis derive
all examples from the strategies alone, so every run executes the same
cases in the same order.
"""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro import Extension, LogicalColumn, LogicalTable, MultiTenantDatabase
from repro.core.layouts import LAYOUTS
from repro.engine.errors import EngineError
from repro.engine.values import DATE, INTEGER, varchar

EXTENSIBLE_LAYOUTS = [name for name in sorted(LAYOUTS) if name != "basic"]

#: Column-type pool for random schemas.  DATE is exercised via the fixed
#: ``added`` column; the random data columns stay INTEGER/VARCHAR so
#: values are easy to generate and compare.
_COLUMN_NAMES = ("alpha", "beta", "gamma", "delta", "epsilon")
_EXT_COLUMN_NAMES = ("xray", "yankee", "zulu")


# -- schema strategy ----------------------------------------------------------


@st.composite
def scenarios(draw):
    """A random (schema, extension, workload) triple."""
    n_columns = draw(st.integers(1, len(_COLUMN_NAMES)))
    column_kinds = [
        draw(st.sampled_from(["int", "str"])) for _ in range(n_columns)
    ]
    has_extension = draw(st.booleans())
    ext_columns = (
        draw(st.integers(1, len(_EXT_COLUMN_NAMES))) if has_extension else 0
    )
    # Tenant 2 subscribes to the extension only sometimes, so layouts
    # must agree on rows where extension columns read NULL.
    tenant2_subscribes = draw(st.booleans()) if has_extension else False
    operations = draw(
        st.lists(
            st.one_of(
                st.tuples(
                    st.just("insert"),
                    st.sampled_from([1, 2]),
                    st.integers(1, 8),
                    st.integers(0, 99),
                    st.text(alphabet="mtdbexz", min_size=1, max_size=5),
                ),
                st.tuples(
                    st.just("update"),
                    st.sampled_from([1, 2]),
                    st.integers(1, 8),
                    st.integers(0, 99),
                ),
                st.tuples(
                    st.just("delete"), st.sampled_from([1, 2]), st.integers(1, 8)
                ),
                st.tuples(
                    st.just("bump"), st.sampled_from([1, 2]), st.integers(0, 60)
                ),
            ),
            min_size=1,
            max_size=10,
        )
    )
    queries = draw(
        st.lists(st.integers(0, 4), min_size=1, max_size=3)
    )
    return {
        "column_kinds": column_kinds,
        "ext_columns": ext_columns,
        "tenant2_subscribes": tenant2_subscribes,
        "operations": operations,
        "queries": queries,
    }


# -- scenario execution -------------------------------------------------------


def build(layout: str, scenario: dict) -> MultiTenantDatabase:
    options = {"width": 2} if layout in ("chunk", "chunk_folding") else {}
    mtd = MultiTenantDatabase(layout=layout, **options)
    columns = [
        LogicalColumn("id", INTEGER, indexed=True, not_null=True),
        LogicalColumn("added", DATE),
    ]
    for name, kind in zip(_COLUMN_NAMES, scenario["column_kinds"]):
        columns.append(
            LogicalColumn(name, INTEGER if kind == "int" else varchar(20))
        )
    mtd.define_table(LogicalTable("item", tuple(columns)))
    if scenario["ext_columns"]:
        mtd.define_extension(
            Extension(
                "extra",
                "item",
                tuple(
                    LogicalColumn(name, INTEGER)
                    for name in _EXT_COLUMN_NAMES[: scenario["ext_columns"]]
                ),
            )
        )
        mtd.create_tenant(1, extensions=("extra",))
        mtd.create_tenant(
            2, extensions=("extra",) if scenario["tenant2_subscribes"] else ()
        )
    else:
        mtd.create_tenant(1)
        mtd.create_tenant(2)
    return mtd


def apply_operation(mtd, scenario: dict, op: tuple, counters: dict) -> None:
    kind = op[0]
    if kind == "insert":
        _, tenant, item_id, number, text = op
        key = (id(mtd), tenant, item_id)
        seq = counters.get(key, 0)
        counters[key] = seq + 1
        values = {"id": item_id * 100 + seq, "added": "2008-06-09"}
        for name, col_kind in zip(_COLUMN_NAMES, scenario["column_kinds"]):
            values[name] = number if col_kind == "int" else text
        subscribed = tenant == 1 or (
            tenant == 2 and scenario["tenant2_subscribes"]
        )
        if scenario["ext_columns"] and subscribed:
            for i, name in enumerate(
                _EXT_COLUMN_NAMES[: scenario["ext_columns"]]
            ):
                values[name] = None if (item_id + i) % 3 == 0 else number + i
        mtd.insert(tenant, "item", values)
    elif kind == "update":
        _, tenant, item_id, number = op
        target = _COLUMN_NAMES[0] if scenario["column_kinds"] else "added"
        if scenario["column_kinds"]:
            value = (
                number
                if scenario["column_kinds"][0] == "int"
                else f"u{number}"
            )
            mtd.execute(
                tenant,
                f"UPDATE item SET {target} = ? WHERE id = ?",
                [value, item_id * 100],
            )
    elif kind == "delete":
        _, tenant, item_id = op
        mtd.execute(tenant, "DELETE FROM item WHERE id = ?", [item_id * 100])
    elif kind == "bump":
        _, tenant, threshold = op
        int_columns = [
            name
            for name, col_kind in zip(_COLUMN_NAMES, scenario["column_kinds"])
            if col_kind == "int"
        ]
        if int_columns:
            col = int_columns[-1]
            mtd.execute(
                tenant,
                f"UPDATE item SET {col} = {col} + 1 WHERE {col} >= ?",
                [threshold],
            )


def run_query(mtd, scenario: dict, tenant: int, shape: int):
    """One of five SELECT shapes; results sorted for comparison."""
    int_columns = [
        name
        for name, kind in zip(_COLUMN_NAMES, scenario["column_kinds"])
        if kind == "int"
    ]
    if shape == 1:
        sql, params = "SELECT id FROM item WHERE id >= ?", [300]
    elif shape == 2 and int_columns:
        sql, params = (
            f"SELECT id, {int_columns[0]} FROM item "
            f"WHERE {int_columns[0]} >= ?",
            [50],
        )
    elif shape == 3:
        sql, params = "SELECT COUNT(*) FROM item", []
    elif shape == 4 and int_columns:
        sql, params = (
            f"SELECT MIN({int_columns[0]}), MAX({int_columns[0]}) FROM item",
            [],
        )
    else:
        sql, params = "SELECT * FROM item", []
    rows = sorted(mtd.execute(tenant, sql, params).rows, key=repr)
    prepared = sorted(
        mtd.prepare(sql).execute(tenant, params).rows, key=repr
    )
    assert prepared == rows, f"prepared != ad-hoc for {sql!r}"
    # Cross-engine differential check: the vectorized executor and the
    # tuple-at-a-time reference must agree on rows, ExecStats row
    # counters, and buffer-pool logical reads — on every layout.
    engine_counters = {}
    for mode in ("vectorized", "tuple"):
        mtd.execution = mode
        pool_before = mtd.db.pool_stats.snapshot()
        exec_before = mtd.db.exec_stats.snapshot()
        result = sorted(mtd.execute(tenant, sql, params).rows, key=repr)
        assert result == rows, f"{mode} engine diverged on {sql!r}"
        engine_counters[mode] = (
            mtd.db.exec_stats.delta(exec_before).row_counters(),
            mtd.db.pool_stats.delta(pool_before).logical_total,
        )
    mtd.execution = "vectorized"
    assert engine_counters["vectorized"] == engine_counters["tuple"], (
        f"engine stats diverged for {sql!r}: {engine_counters}"
    )
    return rows


def layouts_for(scenario: dict) -> list[str]:
    if scenario["ext_columns"]:
        return EXTENSIBLE_LAYOUTS
    return sorted(LAYOUTS)


class TestPropertyEquivalence:
    @settings(
        max_examples=25,
        deadline=None,
        derandomize=True,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(scenario=scenarios())
    def test_random_schema_and_workload_agree_across_layouts(self, scenario):
        names = layouts_for(scenario)
        databases = {name: build(name, scenario) for name in names}
        counters: dict = {}
        for op in scenario["operations"]:
            for mtd in databases.values():
                apply_operation(mtd, scenario, op, counters)
        reference_name = names[0]
        for tenant in (1, 2):
            for shape in scenario["queries"]:
                reference = run_query(
                    databases[reference_name], scenario, tenant, shape
                )
                for name, mtd in databases.items():
                    assert (
                        run_query(mtd, scenario, tenant, shape) == reference
                    ), (
                        f"layout {name} diverged from {reference_name} on "
                        f"tenant {tenant} query shape {shape}: {scenario}"
                    )

    def test_basic_layout_rejects_extensions(self):
        """The seventh layout's documented limitation: 'very good
        consolidation but no extensibility'."""
        mtd = MultiTenantDatabase(layout="basic")
        mtd.define_table(
            LogicalTable(
                "item",
                (LogicalColumn("id", INTEGER, indexed=True, not_null=True),),
            )
        )
        with pytest.raises(EngineError):
            mtd.define_extension(
                Extension("extra", "item", (LogicalColumn("x", INTEGER),))
            )

    def test_suite_covers_every_registered_layout(self):
        """Guard: the registry holds exactly the seven Figure-4 layouts
        this suite claims to cover."""
        assert sorted(LAYOUTS) == [
            "basic",
            "chunk",
            "chunk_folding",
            "extension",
            "pivot",
            "private",
            "universal",
        ]
