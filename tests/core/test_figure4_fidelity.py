"""Figure 4 fidelity: the physical tables each layout produces for the
paper's running example must match the figure's contents.

The figure shows Account tables of tenants 17 (health-care extension),
35 (base only), and 42 (automotive extension) under every layout.  We
rebuild exactly that schema (Aid, Name + extensions — no extra columns)
and compare physical rows against the figure, modulo two documented
renames (``Table``→``tbl`` since TABLE is a keyword; 0-based Row ids as
in the figure).
"""

import pytest

from repro import Extension, LogicalColumn, LogicalTable, MultiTenantDatabase
from repro.engine.values import INTEGER, varchar


def build(layout: str, **options) -> MultiTenantDatabase:
    mtd = MultiTenantDatabase(layout=layout, **options)
    mtd.define_table(
        LogicalTable(
            "account",
            (
                LogicalColumn("aid", INTEGER, not_null=True),
                LogicalColumn("name", varchar(50)),
            ),
        )
    )
    mtd.define_extension(
        Extension(
            "healthcare",
            "account",
            (
                LogicalColumn("hospital", varchar(50)),
                LogicalColumn("beds", INTEGER),
            ),
        )
    )
    mtd.define_extension(
        Extension("automotive", "account", (LogicalColumn("dealers", INTEGER),))
    )
    mtd.create_tenant(17, extensions=("healthcare",))
    mtd.create_tenant(35)
    mtd.create_tenant(42, extensions=("automotive",))
    mtd.insert(17, "account", {"aid": 1, "name": "Acme",
                               "hospital": "St. Mary", "beds": 135})
    mtd.insert(17, "account", {"aid": 2, "name": "Gump",
                               "hospital": "State", "beds": 1042})
    mtd.insert(35, "account", {"aid": 1, "name": "Ball"})
    mtd.insert(42, "account", {"aid": 1, "name": "Big", "dealers": 65})
    return mtd


def physical(mtd, table, columns):
    return sorted(mtd.db.execute(f"SELECT {columns} FROM {table}").rows)


class TestFigure4a_PrivateTables:
    def test_account17(self):
        mtd = build("private")
        assert physical(mtd, "account_t17", "aid, name, hospital, beds") == [
            (1, "Acme", "St. Mary", 135),
            (2, "Gump", "State", 1042),
        ]

    def test_account35_and_42(self):
        mtd = build("private")
        assert physical(mtd, "account_t35", "aid, name") == [(1, "Ball")]
        assert physical(mtd, "account_t42", "aid, name, dealers") == [
            (1, "Big", 65)
        ]


class TestFigure4b_ExtensionTables:
    def test_accountext(self):
        """AccountExt: (Tenant, Row, Aid, Name) exactly as printed."""
        mtd = build("extension")
        assert physical(mtd, "account_ext", "tenant, row, aid, name") == [
            (17, 0, 1, "Acme"),
            (17, 1, 2, "Gump"),
            (35, 0, 1, "Ball"),
            (42, 0, 1, "Big"),
        ]

    def test_healthcare_account(self):
        mtd = build("extension")
        assert physical(
            mtd, "ext_healthcare", "tenant, row, hospital, beds"
        ) == [
            (17, 0, "St. Mary", 135),
            (17, 1, "State", 1042),
        ]

    def test_automotive_account(self):
        mtd = build("extension")
        assert physical(mtd, "ext_automotive", "tenant, row, dealers") == [
            (42, 0, 65)
        ]


class TestFigure4c_UniversalTable:
    def test_rows_with_null_padding(self):
        """Universal: Col1..Coln; tenant 35's row is mostly dashes
        (NULLs), tenant 17 fills four columns."""
        mtd = build("universal", width=6)
        rows = physical(
            mtd,
            "universal",
            "tenant, tbl, col1, col2, col3, col4, col5, col6",
        )
        assert rows == [
            (17, 0, "1", "Acme", "St. Mary", "135", None, None),
            (17, 0, "2", "Gump", "State", "1042", None, None),
            (35, 0, "1", "Ball", None, None, None, None),
            (42, 0, "1", "Big", "65", None, None, None),
        ]


class TestFigure4d_PivotTables:
    def test_pivot_int(self):
        """Pivot_int holds Aid (col 0) and Beds (col 3) / Dealers (col 2
        in the paper; here extension ids are allocated after the base,
        so automotive's dealers gets the next free id)."""
        mtd = build("pivot")
        rows = physical(mtd, "pivot_int", "tenant, tbl, col, row, val")
        aid_rows = [r for r in rows if r[2] == 0]
        assert aid_rows == [
            (17, 0, 0, 0, 1),
            (17, 0, 0, 1, 2),
            (35, 0, 0, 0, 1),
            (42, 0, 0, 0, 1),
        ]
        beds_id = mtd.layout.columns.column_id("account", "beds")
        beds_rows = [r for r in rows if r[2] == beds_id]
        assert [(r[0], r[3], r[4]) for r in beds_rows] == [
            (17, 0, 135),
            (17, 1, 1042),
        ]

    def test_pivot_str(self):
        mtd = build("pivot")
        rows = physical(mtd, "pivot_str", "tenant, col, row, val")
        name_rows = [r for r in rows if r[1] == 1]
        assert [(r[0], r[2], r[3]) for r in name_rows] == [
            (17, 0, "Acme"),
            (17, 1, "Gump"),
            (35, 0, "Ball"),
            (42, 0, "Big"),
        ]

    def test_row_per_field(self):
        """'Each field of each row in a logical source table is given
        its own row': 5+5+2+3 non-meta fields -> 15 pivot rows."""
        mtd = build("pivot")
        total = sum(
            t.row_count
            for t in mtd.db.catalog.tables()
            if t.name.startswith("pivot")
        )
        # tenant 17: 2 rows x 4 cols; 35: 1 x 2; 42: 1 x 3 = 13 fields.
        assert total == 13


class TestFigure4e_ChunkTables:
    def test_chunk_int_str(self):
        """Chunk_int|str with width 2: (Aid, Name) is chunk 0 and
        (Hospital, Beds) chunk 1 for tenant 17 — the figure's exact
        grouping (int1, str1 per chunk)."""
        mtd = build("chunk", width=2)
        rows = physical(
            mtd, "chunk_i1s1", "tenant, tbl, chunk, row, int1, str1"
        )
        assert rows == [
            (17, 0, 0, 0, 1, "Acme"),
            (17, 0, 0, 1, 2, "Gump"),
            (17, 0, 1, 0, 135, "St. Mary"),
            (17, 0, 1, 1, 1042, "State"),
            (35, 0, 0, 0, 1, "Ball"),
            (42, 0, 0, 0, 1, "Big"),
        ]

    def test_dealers_chunk(self):
        mtd = build("chunk", width=2)
        rows = physical(mtd, "chunk_i1", "tenant, chunk, row, int1")
        assert rows == [(42, 1, 0, 65)]


class TestFigure4f_ChunkFolding:
    def test_conventional_account_row(self):
        """AccountRow: the base chunk in a conventional table."""
        mtd = build("chunk_folding", width=2)
        assert physical(mtd, "account_cf", "tenant, row, aid, name") == [
            (17, 0, 1, "Acme"),
            (17, 1, 2, "Gump"),
            (35, 0, 1, "Ball"),
            (42, 0, 1, "Big"),
        ]

    def test_chunk_row_holds_extensions(self):
        """ChunkRow: health-care columns folded into a chunk table; the
        automotive extension lands in its own (int-only) chunk table —
        the figure folds both into one table, we match shapes instead
        ('Chunk Tables that match their structure as closely as
        possible')."""
        mtd = build("chunk_folding", width=2)
        rows = physical(
            mtd, "chunk_i1s1", "tenant, tbl, chunk, row, int1, str1"
        )
        assert rows == [
            (17, 0, 0, 0, 135, "St. Mary"),
            (17, 0, 0, 1, 1042, "State"),
        ]
        assert physical(mtd, "chunk_i1", "tenant, row, int1") == [(42, 0, 65)]

    def test_no_extension_data_in_conventional_table(self):
        mtd = build("chunk_folding", width=2)
        columns = [
            c.lname for c in mtd.db.catalog.table("account_cf").columns
        ]
        assert "hospital" not in columns and "dealers" not in columns
