"""Lightweight lock accounting for contention modelling.

The paper attributes two effects in Experiment 1 to locking (Section 5):
heavyweight selects doing partial scans "with some locking" interfere
with each other, and concurrent inserts wait on page locks.  The testbed
runs sessions cooperatively (one at a time), so instead of real blocking
we *account* conflicts: a session acquiring a resource already held by
another session records a conflict, and the testbed's cost model charges
a wait penalty per conflict.

Resources are arbitrary hashable keys — the testbed uses
``("page", page_id)`` for insert targets and ``("table", name)`` for
scan locks.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class LockStats:
    """Monotonic lock counters.  ``waits`` counts conflict events that
    were charged a wait; ``wait_ms`` accumulates the simulated wait
    durations (Experiment 1's contention penalties)."""

    acquisitions: int = 0
    conflicts: int = 0
    waits: int = 0
    wait_ms: float = 0.0

    def snapshot(self) -> "LockStats":
        return LockStats(**vars(self))

    def delta(self, earlier: "LockStats") -> "LockStats":
        return LockStats(
            **{k: getattr(self, k) - getattr(earlier, k) for k in vars(self)}
        )


class LockTable:
    """Conflict-accounting lock table (non-blocking)."""

    def __init__(self, *, metrics=None) -> None:
        self._holders: dict[object, dict[int, bool]] = {}
        self.stats = LockStats()
        self._metrics = metrics

    def acquire(self, session_id: int, resource: object, *, exclusive: bool) -> int:
        """Record an acquisition; returns the number of conflicting holders."""
        holders = self._holders.setdefault(resource, {})
        conflicts = 0
        for other, other_exclusive in holders.items():
            if other == session_id:
                continue
            if exclusive or other_exclusive:
                conflicts += 1
        holders[session_id] = exclusive or holders.get(session_id, False)
        self.stats.acquisitions += 1
        self.stats.conflicts += conflicts
        if self._metrics is not None:
            self._metrics.counter("locks.acquisitions").inc()
            if conflicts:
                self._metrics.counter("locks.conflicts").inc(conflicts)
        return conflicts

    def record_wait(self, waits: int, wait_ms: float) -> None:
        """Charge ``waits`` conflict events totalling ``wait_ms`` of
        simulated wait time (the testbed's cost model computes the
        durations; the engine owns the ledger)."""
        if waits < 0 or wait_ms < 0:
            raise ValueError("lock waits cannot be negative")
        if waits == 0:
            return
        self.stats.waits += waits
        self.stats.wait_ms += wait_ms
        if self._metrics is not None:
            self._metrics.counter("locks.waits").inc(waits)
            self._metrics.counter("locks.wait_ms").inc(wait_ms)
            self._metrics.histogram("locks.wait_duration_ms").observe(
                wait_ms / waits
            )

    def release_session(self, session_id: int) -> None:
        """Release everything a session holds (end of its action)."""
        for resource in list(self._holders):
            holders = self._holders[resource]
            holders.pop(session_id, None)
            if not holders:
                del self._holders[resource]

    def held_by(self, session_id: int) -> int:
        return sum(1 for h in self._holders.values() if session_id in h)
