"""Tests for SQL types, widths, and the VARCHAR funnel."""

import datetime

import pytest
from hypothesis import given, strategies as st

from repro.engine.errors import TypeMismatchError
from repro.engine.values import (
    BIGINT,
    BOOLEAN,
    DATE,
    DOUBLE,
    INTEGER,
    NULL_WIDTH,
    SqlType,
    TypeKind,
    parse_type,
    sort_key,
    varchar,
)


class TestTypeConstruction:
    def test_varchar_requires_length(self):
        with pytest.raises(TypeMismatchError):
            SqlType(TypeKind.VARCHAR)

    def test_varchar_rejects_nonpositive_length(self):
        with pytest.raises(TypeMismatchError):
            varchar(0)

    def test_fixed_types_reject_length(self):
        with pytest.raises(TypeMismatchError):
            SqlType(TypeKind.INTEGER, 4)

    def test_str(self):
        assert str(varchar(100)) == "VARCHAR(100)"
        assert str(INTEGER) == "INTEGER"


class TestWidths:
    def test_fixed_widths(self):
        assert INTEGER.max_width == 4
        assert BIGINT.max_width == 8
        assert DOUBLE.max_width == 8
        assert DATE.max_width == 4
        assert BOOLEAN.max_width == 1

    def test_varchar_max_width_includes_header(self):
        assert varchar(100).max_width == 102

    def test_null_width_is_one_byte(self):
        assert INTEGER.value_width(None) == NULL_WIDTH
        assert varchar(100).value_width(None) == NULL_WIDTH

    def test_varchar_value_width_is_actual_length(self):
        assert varchar(100).value_width("abc") == 5  # 3 + header


class TestChecking:
    def test_integer_accepts_int(self):
        assert INTEGER.check(42) == 42

    def test_integer_rejects_bool(self):
        with pytest.raises(TypeMismatchError):
            INTEGER.check(True)

    def test_integer_rejects_string(self):
        with pytest.raises(TypeMismatchError):
            INTEGER.check("42")

    def test_double_accepts_int(self):
        assert DOUBLE.check(1) == 1.0
        assert isinstance(DOUBLE.check(1), float)

    def test_varchar_length_enforced(self):
        with pytest.raises(TypeMismatchError):
            varchar(2).check("abc")

    def test_date_accepts_iso_string(self):
        assert DATE.check("2008-06-09") == datetime.date(2008, 6, 9)

    def test_date_rejects_bad_string(self):
        with pytest.raises(TypeMismatchError):
            DATE.check("not-a-date")

    def test_null_passes_all_types(self):
        for sql_type in (INTEGER, DOUBLE, DATE, BOOLEAN, varchar(5)):
            assert sql_type.check(None) is None


class TestVarcharFunnel:
    """The Universal/Pivot layouts store every type in VARCHAR columns."""

    @given(st.integers(min_value=-(2**40), max_value=2**40))
    def test_integer_roundtrip(self, value):
        assert BIGINT.from_varchar(BIGINT.to_varchar(value)) == value

    @given(st.dates())
    def test_date_roundtrip(self, value):
        assert DATE.from_varchar(DATE.to_varchar(value)) == value

    @given(st.booleans())
    def test_boolean_roundtrip(self, value):
        assert BOOLEAN.from_varchar(BOOLEAN.to_varchar(value)) is value

    @given(st.floats(allow_nan=False, allow_infinity=False))
    def test_double_roundtrip(self, value):
        assert DOUBLE.from_varchar(DOUBLE.to_varchar(value)) == value

    @given(st.text(max_size=50))
    def test_text_roundtrip(self, value):
        t = varchar(50)
        assert t.from_varchar(t.to_varchar(value)) == value

    def test_null_roundtrip(self):
        assert INTEGER.to_varchar(None) is None
        assert INTEGER.from_varchar(None) is None


class TestParseType:
    def test_parse_varchar(self):
        assert parse_type("VARCHAR(100)") == varchar(100)

    def test_parse_case_insensitive(self):
        assert parse_type("integer") == INTEGER

    def test_parse_rejects_garbage(self):
        with pytest.raises(TypeMismatchError):
            parse_type("BLOB")

    def test_parse_rejects_malformed_varchar(self):
        with pytest.raises(TypeMismatchError):
            parse_type("VARCHAR(x)")


class TestSortKey:
    def test_nulls_sort_first(self):
        values = [3, None, 1]
        assert sorted(values, key=sort_key) == [None, 1, 3]

    def test_mixed_types_are_totally_ordered(self):
        values = ["b", 2, None, datetime.date(2008, 1, 1), "a", 1]
        ordered = sorted(values, key=sort_key)
        assert ordered[0] is None
        assert sorted(ordered, key=sort_key) == ordered
