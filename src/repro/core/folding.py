"""Chunk partitioning and folding algorithms.

A logical table is vertically partitioned into *chunks* — groups of
columns that travel together.  Each chunk is then *folded* into a
physical Chunk Table whose shape (slot counts per type family) matches
the chunk as closely as possible; chunks of many tables and tenants
share the same physical tables, distinguished by the (Tenant, Table,
Chunk) meta-data columns.

Two planners are provided:

* :func:`partition_columns` — the width-driven splitter used by the
  experiments: indexed columns go into single-column indexed chunks
  (the paper's ChunkIndex), the remaining columns fill chunks of at
  most ``width`` data columns (ChunkData).

* :class:`FoldingPlanner` — the utilization-driven splitter sketched in
  the paper's future work: given per-column access frequencies it keeps
  the hottest columns in a conventional fragment and sends cold columns
  to Chunk Tables, subject to a meta-data budget.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..engine.errors import PlanError
from .layouts.base import SLOT_DDL, SLOT_FAMILIES, slot_family
from .schema import LogicalColumn


@dataclass(frozen=True)
class ChunkShape:
    """Slot counts per type family — determines the physical table."""

    ints: int = 0
    strs: int = 0
    dates: int = 0
    dbls: int = 0

    @property
    def width(self) -> int:
        return self.ints + self.strs + self.dates + self.dbls

    def table_name(self, *, indexed: bool) -> str:
        parts = []
        for label, count in (
            ("i", self.ints),
            ("s", self.strs),
            ("d", self.dates),
            ("f", self.dbls),
        ):
            if count:
                parts.append(f"{label}{count}")
        suffix = "_ix" if indexed else ""
        return "chunk_" + "".join(parts) + suffix

    def slot_names(self) -> list[str]:
        names = []
        for family, count in (
            ("int", self.ints),
            ("str", self.strs),
            ("date", self.dates),
            ("dbl", self.dbls),
        ):
            names.extend(f"{family}{i + 1}" for i in range(count))
        return names

    @staticmethod
    def of_columns(columns: list[LogicalColumn]) -> "ChunkShape":
        counts = {family: 0 for family in SLOT_FAMILIES}
        for column in columns:
            counts[slot_family(column.type)] += 1
        return ChunkShape(
            ints=counts["int"],
            strs=counts["str"],
            dates=counts["date"],
            dbls=counts["dbl"],
        )


@dataclass(frozen=True)
class ChunkAssignment:
    """One chunk: its id, shape, and logical-column → slot mapping."""

    chunk_id: int
    shape: ChunkShape
    indexed: bool
    slots: tuple[tuple[str, str], ...]  # (logical column, slot name)

    def slot_of(self, column: str) -> str:
        for name, slot in self.slots:
            if name == column:
                return slot
        raise PlanError(f"column {column!r} not in chunk {self.chunk_id}")


def _assign_slots(columns: list[LogicalColumn]) -> tuple[ChunkShape, tuple]:
    shape = ChunkShape.of_columns(columns)
    counters = {family: 0 for family in SLOT_FAMILIES}
    slots = []
    for column in columns:
        family = slot_family(column.type)
        counters[family] += 1
        slots.append((column.lname, f"{family}{counters[family]}"))
    return shape, tuple(slots)


def partition_columns(
    columns: list[LogicalColumn], width: int
) -> list[ChunkAssignment]:
    """Width-driven partitioning (the Experiment 2 scheme).

    Indexed columns get single-column indexed chunks first (chunk ids
    0..k-1), then the remaining columns are grouped, in declaration
    order, into chunks of at most ``width`` data columns.  ``width=1``
    degenerates to a Pivot-like layout; width = len(columns) approaches
    a Universal-like single chunk.
    """
    if width < 1:
        raise PlanError("chunk width must be >= 1")
    assignments: list[ChunkAssignment] = []
    indexed = [c for c in columns if c.indexed]
    plain = [c for c in columns if not c.indexed]
    for column in indexed:
        shape, slots = _assign_slots([column])
        assignments.append(
            ChunkAssignment(len(assignments), shape, True, slots)
        )
    for start in range(0, len(plain), width):
        group = plain[start : start + width]
        shape, slots = _assign_slots(group)
        assignments.append(
            ChunkAssignment(len(assignments), shape, False, slots)
        )
    return assignments


def chunk_table_ddl(
    shape: ChunkShape, *, indexed: bool, soft_delete: bool = False
) -> tuple[str, list[str]]:
    """DDL for the physical Chunk Table of one shape.

    Every chunk table carries the four meta-data columns and a unique
    ``(tenant, tbl, chunk, row)`` index — a partitioned B-tree whose
    redundant leading columns prefix-compress well (Section 6.1).
    Indexed shapes also get the value-leading ``itcr`` index that mimics
    a conventional table's column index.
    """
    table = shape.table_name(indexed=indexed)
    columns = [
        "tenant INTEGER NOT NULL",
        "tbl INTEGER NOT NULL",
        "chunk INTEGER NOT NULL",
        "row INTEGER NOT NULL",
    ]
    if soft_delete:
        columns.append("alive INTEGER NOT NULL")
    for family, count in (
        ("int", shape.ints),
        ("str", shape.strs),
        ("date", shape.dates),
        ("dbl", shape.dbls),
    ):
        columns.extend(
            f"{family}{i + 1} {SLOT_DDL[family]}" for i in range(count)
        )
    ddl = f"CREATE TABLE {table} (" + ", ".join(columns) + ")"
    indexes = [
        f"CREATE UNIQUE INDEX {table}_tcr ON {table} (tenant, tbl, chunk, row)"
    ]
    if indexed and shape.ints:
        indexes.append(
            f"CREATE INDEX {table}_itcr ON {table} (int1, tenant, tbl, chunk, row)"
        )
    return ddl, indexes


# ---------------------------------------------------------------------------
# Shape covers: spending a bounded meta-data budget on Chunk Tables
# ---------------------------------------------------------------------------


def merge_shapes(a: ChunkShape, b: ChunkShape) -> ChunkShape:
    """The smallest shape that can host chunks of either input shape
    (element-wise maximum per type family)."""
    return ChunkShape(
        ints=max(a.ints, b.ints),
        strs=max(a.strs, b.strs),
        dates=max(a.dates, b.dates),
        dbls=max(a.dbls, b.dbls),
    )


def shape_fits(cover: ChunkShape, chunk: ChunkShape) -> bool:
    return (
        cover.ints >= chunk.ints
        and cover.strs >= chunk.strs
        and cover.dates >= chunk.dates
        and cover.dbls >= chunk.dbls
    )


def shape_waste(cover: ChunkShape, chunk: ChunkShape) -> int:
    """Unused slots when a chunk of one shape is stored in a cover table
    — NULL columns every row of that chunk drags along."""
    if not shape_fits(cover, chunk):
        raise PlanError(f"shape {cover} cannot host {chunk}")
    return cover.width - chunk.width


def select_cover_shapes(
    demand: dict[ChunkShape, int], budget: int
) -> list[ChunkShape]:
    """Pick at most ``budget`` Chunk Table shapes hosting all demanded
    chunk shapes with minimal total slot waste.

    ``demand`` maps each required chunk shape to how many chunk *rows*
    (or chunks — any weight) will use it.  Chunk Folding's premise is
    that the database tolerates only so many tables ("the database's
    entire meta-data budget"); when distinct shapes exceed the budget,
    shapes must share tables, padding the narrower chunks with NULLs —
    the Universal-Table trade-off creeping back in, made explicit.

    Greedy agglomeration: repeatedly merge the pair of covers whose
    union adds the least weighted waste.  With networkx available the
    candidate pair is found via a minimum-weight edge of the complete
    merge graph; otherwise a plain scan is used (same result, this is
    just the paper-cited matching machinery doing the search).
    """
    if budget < 1:
        raise PlanError("shape budget must be >= 1")
    covers: dict[ChunkShape, int] = dict(demand)
    if not covers:
        return []

    def merge_cost(a: ChunkShape, b: ChunkShape) -> int:
        merged = merge_shapes(a, b)
        return covers[a] * shape_waste(merged, a) + covers[b] * shape_waste(
            merged, b
        )

    while len(covers) > budget:
        best_pair = None
        try:
            import networkx as nx

            graph = nx.Graph()
            shapes = list(covers)
            for i, a in enumerate(shapes):
                for b in shapes[i + 1 :]:
                    graph.add_edge(a, b, weight=merge_cost(a, b))
            best_pair = min(
                graph.edges(data="weight"), key=lambda e: e[2]
            )[:2]
        except ImportError:  # pragma: no cover - networkx ships with tests
            shapes = list(covers)
            best_cost = None
            for i, a in enumerate(shapes):
                for b in shapes[i + 1 :]:
                    cost = merge_cost(a, b)
                    if best_cost is None or cost < best_cost:
                        best_pair, best_cost = (a, b), cost
        a, b = best_pair
        merged = merge_shapes(a, b)
        weight = covers.pop(a) + covers.pop(b)
        covers[merged] = covers.get(merged, 0) + weight
    return sorted(covers, key=lambda s: (s.width, s.table_name(indexed=False)))


def assign_cover(
    covers: list[ChunkShape], chunk: ChunkShape
) -> ChunkShape:
    """Cheapest cover that fits a chunk shape."""
    candidates = [c for c in covers if shape_fits(c, chunk)]
    if not candidates:
        raise PlanError(f"no cover shape fits {chunk}")
    return min(candidates, key=lambda c: shape_waste(c, chunk))


def total_waste(demand: dict[ChunkShape, int], covers: list[ChunkShape]) -> int:
    """Weighted slot waste of hosting ``demand`` in ``covers``."""
    return sum(
        weight * shape_waste(assign_cover(covers, shape), shape)
        for shape, weight in demand.items()
    )


# ---------------------------------------------------------------------------
# Utilization-driven folding (the paper's ongoing-work direction)
# ---------------------------------------------------------------------------


@dataclass
class FoldingDecision:
    """Outcome of utilization-driven planning for one logical table."""

    conventional: list[LogicalColumn] = field(default_factory=list)
    chunked: list[ChunkAssignment] = field(default_factory=list)

    @property
    def chunk_count(self) -> int:
        return len(self.chunked)


class FoldingPlanner:
    """Split a table's columns between a conventional fragment and Chunk
    Tables based on access-frequency statistics.

    "Good performance is obtained by mapping the most heavily-utilized
    parts of the logical schemas into the conventional tables and the
    remaining parts into Chunk Tables that match their structure as
    closely as possible."

    ``hot_fraction`` keeps the hottest columns conventional;
    ``chunk_width`` shapes the cold remainder.  Columns with no recorded
    utilization count as cold.
    """

    def __init__(self, *, hot_fraction: float = 0.5, chunk_width: int = 6) -> None:
        if not 0.0 <= hot_fraction <= 1.0:
            raise PlanError("hot_fraction must be in [0, 1]")
        self.hot_fraction = hot_fraction
        self.chunk_width = chunk_width
        self._heat: dict[tuple[str, str], int] = {}

    # -- statistics ---------------------------------------------------------

    def record_access(self, table: str, column: str, weight: int = 1) -> None:
        key = (table.lower(), column.lower())
        self._heat[key] = self._heat.get(key, 0) + weight

    def heat(self, table: str, column: str) -> int:
        return self._heat.get((table.lower(), column.lower()), 0)

    # -- planning ---------------------------------------------------------------

    def plan(self, table_name: str, columns: list[LogicalColumn]) -> FoldingDecision:
        ranked = sorted(
            columns,
            key=lambda c: self.heat(table_name, c.name),
            reverse=True,
        )
        hot_count = round(len(columns) * self.hot_fraction)
        hot_names = {c.lname for c in ranked[:hot_count]}
        # Indexed columns stay conventional: the whole point of marking
        # them is cheap point access.
        hot_names.update(c.lname for c in columns if c.indexed)
        conventional = [c for c in columns if c.lname in hot_names]
        cold = [c for c in columns if c.lname not in hot_names]
        chunked = partition_columns(cold, self.chunk_width)
        return FoldingDecision(conventional=conventional, chunked=chunked)
