"""Ablation — the per-table meta-data cost drives the Figure 7 knee.

The paper quotes DB2 V9.1's 4 KB per table; this ablation re-runs a
two-point variability sweep with 2/4/8 KB per table and shows the
degradation scales with the meta-data budget: the more memory each
table object eats, the smaller the effective buffer pool at high
variability and the worse the index hit ratio.
"""

import pytest

from repro.engine.database import Database
from repro.engine.pager import PageKind
from repro.core.api import MultiTenantDatabase
from repro.experiments.report import render_table
from repro.testbed.controller import Testbed, TestbedConfig
from repro.testbed.generator import TenantDataProfile

COSTS = (2048, 4096, 8192)


def run_point(table_metadata_cost: int, variability: float):
    config = TestbedConfig(
        variability=variability,
        tenants=60,
        sessions=8,
        actions=240,
        memory_bytes=6 * 1024 * 1024,
        data_profile=TenantDataProfile(default_rows=5),
    )
    testbed = Testbed(config)
    db = Database(
        memory_bytes=config.memory_bytes,
        table_metadata_cost=table_metadata_cost,
    )
    mtd = MultiTenantDatabase(layout=config.layout, db=db)
    # Re-implement Testbed.setup with the customized engine.
    from repro.testbed.crm import crm_tables
    from repro.testbed.generator import DataGenerator

    instance_tables = {}
    for instance in range(testbed.variability.instances):
        tables = crm_tables(instance)
        instance_tables[instance] = tables
        for table in tables:
            mtd.define_table(table)
    generator = DataGenerator(config.seed)
    for tenant_id, instance in testbed.tenant_instance.items():
        mtd.create_tenant(tenant_id)
        generator.load_tenant(
            mtd, tenant_id, instance_tables[instance], config.data_profile
        )
    testbed.mtd = mtd
    results = testbed.run()
    return testbed.metrics(results)


@pytest.fixture(scope="module")
def sweep():
    return {
        cost: {v: run_point(cost, v) for v in (0.0, 1.0)} for cost in COSTS
    }


class TestMetadataCostAblation:
    def test_report(self, benchmark, sweep, report):
        rows = []
        for cost, points in sweep.items():
            rows.append(
                (
                    f"{cost // 1024} KB",
                    round(points[0.0].index_hit_ratio * 100, 2),
                    round(points[1.0].index_hit_ratio * 100, 2),
                    round(
                        points[1.0].throughput_per_minute
                        / points[0.0].throughput_per_minute,
                        2,
                    ),
                )
            )
        benchmark.pedantic(lambda: None, rounds=1)
        report(
            "ablation_metadata_cost",
            render_table(
                "Ablation: per-table meta-data cost vs. degradation",
                [
                    "cost/table",
                    "index hit % (v=0)",
                    "index hit % (v=1)",
                    "throughput ratio v1/v0",
                ],
                rows,
            ),
        )

    def test_higher_cost_hurts_more(self, sweep):
        hit_2k = sweep[2048][1.0].index_hit_ratio
        hit_8k = sweep[8192][1.0].index_hit_ratio
        assert hit_8k <= hit_2k

    def test_buffer_pool_shrinks_with_cost(self, sweep):
        pages = {
            cost: sweep[cost][1.0]  # metrics carry no pool size; recompute
            for cost in COSTS
        }
        # Direct check on the engine instead:
        pools = {}
        for cost in (2048, 8192):
            db = Database(memory_bytes=6 * 1024 * 1024, table_metadata_cost=cost)
            for i in range(100):
                db.execute(f"CREATE TABLE t{i} (x INTEGER)")
            pools[cost] = db.buffer_pool_pages
        assert pools[8192] < pools[2048]

    def test_benchmark_ddl_wallclock(self, benchmark):
        def create_tables():
            db = Database(memory_bytes=4 * 1024 * 1024)
            for i in range(50):
                db.execute(f"CREATE TABLE t{i} (x INTEGER, y VARCHAR(20))")
            return db.catalog.table_count

        count = benchmark(create_tables)
        assert count == 50
