"""Experiment harnesses regenerating the paper's tables and figures."""

from .manytables import ManyTablesExperiment, ManyTablesRow  # noqa: F401
from .chunkqueries import (  # noqa: F401
    ChunkQueryExperiment,
    ChunkQueryConfig,
    QueryMeasurement,
)
from .report import render_series, render_table  # noqa: F401
