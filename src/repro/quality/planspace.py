"""Bounded plan-space enumeration.

:class:`~repro.engine.optimizer.PlanDirectives` can pin the join order,
forbid index access per FROM position, and force the join method per
position — enough to reach every structurally distinct plan the planner
could have produced.  :func:`enumerate_plans` walks that space in tiers
(join orders first, then access forcing, then join methods), dedupes by
the rendered plan shape, and stops at ``budget`` distinct plans, so the
harness's cost stays linear in the budget rather than factorial in the
FROM-list width.

Directive combinations pin *every* cost-based choice on the fully
specified tiers, so the enumerated space does not shift when the
feedback store learns new selectivities — the "best plan" baseline is
stable across feedback rounds.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import islice, permutations, product
from typing import Iterator

from ..engine.errors import PlanError
from ..engine.explain import render_plan
from ..engine.optimizer import PlanDirectives
from ..engine.sql import ast

#: Cap on join orders considered for very wide FROM lists (chunk layouts
#: shred one logical table into several physical sources); the budget
#: usually bites first, this keeps candidate generation itself cheap.
MAX_ORDERS = 24


@dataclass
class Alternative:
    """One distinct plan reachable for a query."""

    directives: PlanDirectives | None  #: None = the planner's own choice
    signature: str  #: rendered plan shape (dedup + display key)
    root: object  #: the physical plan (PReturn)

    @property
    def is_default(self) -> bool:
        return self.directives is None


def _candidate_directives(n: int) -> Iterator[PlanDirectives | None]:
    """Directive candidates in increasing specificity.

    Tier 0 is the planner's default; tier 1 varies the join order alone;
    tier 2 adds access-path forcing; tier 3 adds join-method forcing.
    Later tiers pin everything, making those plans estimate-independent.
    Forced table scans are limited to one position at a time for three
    or more sources — multi-scan plans of wide joins are cross-product
    blowups that are never competitive but dominate wall time.
    """
    yield None
    orders = list(islice(permutations(range(n)), MAX_ORDERS))
    if n <= 2:
        accesses = [a for a in product((None, "scan"), repeat=n) if any(a)]
    else:
        accesses = []
        for position in range(n):
            forced: list[str | None] = [None] * n
            forced[position] = "scan"
            accesses.append(tuple(forced))
    for order in orders:
        yield PlanDirectives(join_order=order)
    for order in orders:
        for access in accesses:
            yield PlanDirectives(join_order=order, access_paths=access)
    method_choices = list(product(("nl", "hash"), repeat=max(0, n - 1)))
    for order in orders:
        for access in [tuple([None] * n)] + accesses:
            for methods in method_choices:
                by_position: list[str | None] = [None] * n
                for i, method in enumerate(methods):
                    by_position[order[i + 1]] = method
                yield PlanDirectives(
                    join_order=order,
                    access_paths=access,
                    join_methods=tuple(by_position),
                )


def enumerate_plans(
    db, stmt: ast.Select, budget: int = 24
) -> list[Alternative]:
    """Distinct plans for ``stmt``, the planner's default first.

    ``db`` is an engine :class:`~repro.engine.database.Database`; plans
    are deduplicated by rendered shape and enumeration stops once
    ``budget`` distinct plans exist (the default plan always counts as
    the first).
    """
    n = db._planner.source_count(stmt)
    seen: dict[str, Alternative] = {}
    out: list[Alternative] = []
    for directives in _candidate_directives(n):
        if len(out) >= budget:
            break
        try:
            root = db.plan_ast(stmt, directives)
        except PlanError:  # pragma: no cover - defensive
            continue
        signature = render_plan(root)
        if signature in seen:
            continue
        alternative = Alternative(directives, signature, root)
        seen[signature] = alternative
        out.append(alternative)
    return out
