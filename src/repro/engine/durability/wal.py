"""The write-ahead log.

One append-only file of CRC-framed records (see :mod:`codec`).  The
first frame is always a header carrying ``base_lsn``; a record's LSN is
``base_lsn`` plus the byte offset of its frame, so LSNs stay monotonic
across checkpoint truncations (the new file starts where the old LSN
space ended).

Appends are buffered in process — a crash loses everything since the
last flush, which is exactly the power-loss model the recovery tests
exercise.  ``commit_append`` implements group commit: the flush+fsync
is deferred until ``group_commit`` commit records have accumulated, so
one fsync amortizes over a batch (the classic group-commit trade:
bounded loss window, much higher commit throughput).

A checkpoint swaps the whole file atomically (write temp + fsync +
``os.replace``) for a fresh one whose only payload is the checkpoint
record; recovery therefore never scans more log than was written since
the last checkpoint.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

from .codec import decode_frames, encode_frame
from .faults import FaultInjector, SimulatedCrash

#: Record type of the file header frame.
HEADER_RECORD = "wal_header"

#: The seeded mutation the recovery property test must catch: flushes
#: report success without writing, so "durable" commits are lost.
MUTATE_SKIP_FLUSH = "skip-wal-flush"


@dataclass
class WalStats:
    """WAL activity counters (snapshot/delta like ``PoolStats``)."""

    records: int = 0
    bytes_written: int = 0
    flushes: int = 0
    fsyncs: int = 0

    def snapshot(self) -> "WalStats":
        return WalStats(**vars(self))

    def delta(self, earlier: "WalStats") -> "WalStats":
        return WalStats(
            **{k: getattr(self, k) - getattr(earlier, k) for k in vars(self)}
        )


class WriteAheadLog:
    """Buffered, CRC-framed, LSN-addressed log over one file."""

    def __init__(
        self,
        path: str,
        *,
        metrics=None,
        faults: FaultInjector | None = None,
        group_commit: int = 1,
        mutate: str | None = None,
    ) -> None:
        self.path = path
        self.stats = WalStats()
        self.group_commit = max(1, group_commit)
        self._faults = faults or FaultInjector()
        self._mutate_skip_flush = mutate == MUTATE_SKIP_FLUSH
        self._metrics = metrics
        if metrics is not None:
            self._c_records = metrics.counter("db.wal.records")
            self._c_bytes = metrics.counter("db.wal.bytes_written")
            self._c_flushes = metrics.counter("db.wal.flushes")
            self._c_fsyncs = metrics.counter("db.wal.fsyncs")
            self._h_batch = metrics.histogram("db.wal.group_commit_batch")
        self.base_lsn = 0
        self._file = None
        #: Bytes durably in the file (after the last flush).
        self._durable = 0
        #: Logical log length: durable + dropped-by-mutation + pending.
        self._appended = 0
        #: ``_appended`` as of the last checkpoint head (or file header):
        #: the auto-checkpoint trigger measures volume past this point,
        #: never the snapshot itself — a snapshot larger than the
        #: trigger would otherwise force a checkpoint per statement.
        self._checkpoint_anchor = 0
        self._pending = bytearray()
        self._pending_commits = 0
        self._flushed_lsn = 0

    # -- opening ----------------------------------------------------------

    def open(self) -> list[tuple[int, dict]]:
        """Open (creating if absent) and return the durable records as
        ``(lsn, record)`` pairs, excluding the header.  A torn tail is
        truncated away so subsequent appends extend a valid log."""
        existed = os.path.exists(self.path)
        records: list[tuple[int, dict]] = []
        valid_end = 0
        if existed:
            with open(self.path, "rb") as fh:
                data = fh.read()
            frames = list(decode_frames(data))
            if frames and (
                isinstance(frames[0][1], dict)
                and frames[0][1].get("t") == HEADER_RECORD
            ):
                self.base_lsn = frames[0][1]["base_lsn"]
                for offset, record in frames[1:]:
                    records.append((self.base_lsn + offset, record))
                last_offset, last_record = frames[-1]
                valid_end = last_offset + len(encode_frame(last_record))
            else:
                # Unreadable header: treat as an empty log.
                existed = False
        self._file = open(self.path, "r+b" if existed else "w+b")
        if existed:
            if valid_end < os.path.getsize(self.path):
                self._file.truncate(valid_end)
            self._file.seek(valid_end)
            self._durable = self._appended = valid_end
            # Anchor past the header, and past the checkpoint head if
            # the log starts with one (it is always the first record).
            ends = [off for off, _ in frames[1:]] + [valid_end]
            anchor = ends[0]
            if records and records[0][1].get("t") == "checkpoint":
                anchor = ends[1] if len(ends) > 1 else valid_end
            self._checkpoint_anchor = anchor
        else:
            header = encode_frame({"t": HEADER_RECORD, "base_lsn": 0})
            self.base_lsn = 0
            self._file.write(header)
            self._file.flush()
            os.fsync(self._file.fileno())
            self._durable = self._appended = len(header)
            self._checkpoint_anchor = self._appended
        self._flushed_lsn = self.base_lsn + self._appended
        return records

    # -- appending --------------------------------------------------------

    @property
    def end_lsn(self) -> int:
        """LSN one past the last appended (possibly unflushed) record."""
        return self.base_lsn + self._appended

    @property
    def flushed_lsn(self) -> int:
        return self._flushed_lsn

    @property
    def bytes_since_checkpoint(self) -> int:
        """Log volume accumulated past the checkpoint head
        (auto-checkpoint trigger input)."""
        return self._appended - self._checkpoint_anchor

    def append(self, record: dict) -> int:
        """Buffer one record; returns its LSN.  Not yet durable."""
        lsn = self.base_lsn + self._appended
        frame = encode_frame(record)
        self._pending += frame
        self._appended += len(frame)
        self.stats.records += 1
        if self._metrics is not None:
            self._c_records.inc()
        return lsn

    def commit_append(self, record: dict) -> int:
        """Append a transaction terminal and apply the group-commit
        policy: flush now unless the batch is still filling."""
        lsn = self.append(record)
        self._pending_commits += 1
        if self._pending_commits >= self.group_commit:
            self.flush()
        return lsn

    # -- durability -------------------------------------------------------

    def flush(self) -> None:
        """Write and fsync the buffered suffix."""
        if not self._pending:
            return
        self._faults.crashpoint("wal.flush")
        pending = bytes(self._pending)
        batch = self._pending_commits
        self._pending.clear()
        self._pending_commits = 0
        self.stats.flushes += 1
        if self._metrics is not None:
            self._c_flushes.inc()
            if batch:
                self._h_batch.observe(batch)
        if self._mutate_skip_flush:
            # The seeded bug: report success, write nothing.
            self._flushed_lsn = self.base_lsn + self._appended
            return
        short = self._faults.short_fsync_length(len(pending))
        if short is not None:
            self._file.write(pending[:short])
            self._file.flush()
            os.fsync(self._file.fileno())
            raise SimulatedCrash(
                f"short fsync: {short}/{len(pending)} bytes reached disk"
            )
        self._file.write(pending)
        self._file.flush()
        os.fsync(self._file.fileno())
        self._durable += len(pending)
        self._flushed_lsn = self.base_lsn + self._appended
        self.stats.bytes_written += len(pending)
        self.stats.fsyncs += 1
        if self._metrics is not None:
            self._c_bytes.inc(len(pending))
            self._c_fsyncs.inc()

    def flush_to(self, lsn: int) -> None:
        """The WAL rule: before a page stamped ``lsn`` reaches disk, the
        log must be durable at least that far."""
        if lsn > self._flushed_lsn:
            self.flush()

    # -- checkpointing ----------------------------------------------------

    def checkpoint_reset(self, checkpoint_record: dict) -> int:
        """Atomically replace the log with a fresh one containing only
        ``checkpoint_record``.  Returns the record's LSN; the new
        ``base_lsn`` is the old ``end_lsn`` so the address space keeps
        growing monotonically."""
        self.flush()
        new_base = self.end_lsn
        header = encode_frame({"t": HEADER_RECORD, "base_lsn": new_base})
        body = encode_frame(checkpoint_record)
        tmp = self.path + ".tmp"
        with open(tmp, "wb") as fh:
            fh.write(header + body)
            fh.flush()
            os.fsync(fh.fileno())
        self._faults.crashpoint("wal.checkpoint_reset")
        self._file.close()
        os.replace(tmp, self.path)
        self._file = open(self.path, "r+b")
        self._file.seek(0, os.SEEK_END)
        self.base_lsn = new_base
        self._durable = self._appended = len(header) + len(body)
        self._checkpoint_anchor = self._appended
        self._pending.clear()
        self._pending_commits = 0
        self._flushed_lsn = new_base + self._appended
        self.stats.bytes_written += len(header) + len(body)
        self.stats.fsyncs += 1
        if self._metrics is not None:
            self._c_bytes.inc(len(header) + len(body))
            self._c_fsyncs.inc()
        return new_base + len(header)

    def close(self) -> None:
        if self._file is not None:
            self.flush()
            self._file.close()
            self._file = None
