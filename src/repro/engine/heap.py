"""Heap files: slotted-page row storage.

Rows live in pages as Python tuples; the byte width of each row is
computed by the caller (the table knows its column types) and used for
placement so rows-per-page matches what the declared schema would give
on a real 8 KB page.

Two insert strategies model the DB2 behaviour hypothesised in Section 5
of the paper ("DB2 is switching between the two insert methods it
provides"):

* ``FIRST_FIT`` — find the most suitable page with enough free space,
  producing a compactly stored relation (slower per insert: the free
  space map is consulted and candidate pages are read).
* ``APPEND`` — append to the last page, producing a sparsely stored
  relation but touching exactly one page.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterator

from .errors import ExecutionError
from .pager import BufferPool, Page, PageKind

#: Per-row slot overhead (slot pointer + record header).
ROW_OVERHEAD = 8


class InsertStrategy(enum.Enum):
    FIRST_FIT = "first-fit"
    APPEND = "append"


@dataclass(frozen=True)
class RowId:
    """Physical row address: page + slot.  Stable until VACUUM (never)."""

    page_id: int
    slot: int


class HeapFile:
    """A heap of rows for one table, stored in DATA pages of one segment."""

    #: Storage discriminator surfaced through the catalog (``Table.storage``)
    #: and persisted in checkpoint snapshots / DDL WAL records.  The
    #: column-major sibling (:class:`~repro.engine.columnstore.ColumnStore`)
    #: overrides this with ``"columnar"``.
    storage_kind = "heap"

    def __init__(
        self,
        pool: BufferPool,
        segment_id: int,
        strategy: InsertStrategy = InsertStrategy.FIRST_FIT,
        *,
        metrics=None,
    ) -> None:
        self._pool = pool
        self.segment_id = segment_id
        self.strategy = strategy
        self._page_ids: list[int] = []
        # Free-space map: page_id -> free bytes. Maintained on insert and
        # delete; FIRST_FIT scans it for the best (tightest) fit.
        self._free_map: dict[int, int] = {}
        self.row_count = 0
        # Per-structure access counters (engine-wide totals additionally
        # land in the shared registry under heap.*).
        self.fetches = 0
        self.scans = 0
        self.inserts = 0
        self.updates = 0
        self.deletes = 0
        self._metrics = metrics

    def _count(self, attribute: str, metric: str) -> None:
        setattr(self, attribute, getattr(self, attribute) + 1)
        if self._metrics is not None:
            self._metrics.counter(metric).inc()

    # -- inserts ----------------------------------------------------------

    def insert(self, row: tuple, width: int) -> RowId:
        """Place a row, returning its RID.  ``width`` is its byte size."""
        need = width + ROW_OVERHEAD
        page = self._choose_page(need)
        if page is None:
            page = self._pool.allocate(self.segment_id, PageKind.DATA)
            page.payload = []
            self._page_ids.append(page.page_id)
        slots: list = page.payload
        # Reuse a tombstone slot if one exists so RIDs stay dense-ish.
        slot_no = None
        for i, existing in enumerate(slots):
            if existing is None:
                slot_no = i
                break
        if slot_no is None:
            slot_no = len(slots)
            slots.append(None)
        slots[slot_no] = (row, width)
        page.used += need
        self._free_map[page.page_id] = page.free
        self._pool.mark_dirty(page.page_id)
        self.row_count += 1
        self._count("inserts", "heap.inserts")
        san = self._pool.sanitizer
        if san is not None:
            san.on_row_access(
                (self.segment_id, page.page_id, slot_no), write=True
            )
        return RowId(page.page_id, slot_no)

    def _choose_page(self, need: int) -> Page | None:
        if not self._page_ids:
            return None
        if self.strategy is InsertStrategy.APPEND:
            last = self._pool.read(self._page_ids[-1])
            if last.free >= need:
                return last
            return None
        # FIRST_FIT: pick the tightest page that fits ("most suitable").
        # Searching for the best page inspects candidate pages — the cost
        # that makes DB2's compact insert method slower than append.
        best_id, best_free = None, None
        runner_up = None
        for pid, free in self._free_map.items():
            if free >= need and (best_free is None or free < best_free):
                runner_up = best_id
                best_id, best_free = pid, free
        if best_id is None:
            return None
        if runner_up is not None:
            self._pool.read(runner_up)
        return self._pool.read(best_id)

    # -- reads --------------------------------------------------------------

    def fetch(self, rid: RowId) -> tuple:
        """Read one row by RID (one logical data-page read)."""
        self._count("fetches", "heap.fetches")
        page = self._pool.read(rid.page_id)
        slots: list = page.payload
        if rid.slot >= len(slots) or slots[rid.slot] is None:
            raise ExecutionError(f"dangling RID {rid}")
        san = self._pool.sanitizer
        if san is not None:
            san.on_row_access(
                (self.segment_id, rid.page_id, rid.slot), write=False
            )
        return slots[rid.slot][0]

    def scan(self) -> Iterator[tuple[RowId, tuple]]:
        """Full scan in physical order, reading every page once."""
        self._count("scans", "heap.scans")
        for pid in list(self._page_ids):
            page = self._pool.read(pid)
            for slot_no, entry in enumerate(page.payload):
                if entry is not None:
                    yield RowId(pid, slot_no), entry[0]

    def scan_batches(self, batch_rows: int) -> Iterator[list[tuple]]:
        """Rows only, in the same physical order as :meth:`scan`, in
        lists of at most ``batch_rows`` — the vectorized executor's scan
        path.  Page accounting is identical to :meth:`scan` (one logical
        read per page, one ``heap.scans`` tick per call); rows of one
        page are gathered with a single comprehension instead of a
        per-row generator resumption.  Yielded lists are freshly built
        and never touched again by this generator, so consumers may keep
        or mutate them; exact-size batches are handed over as-is instead
        of being sliced out and shifted (the old ``del batch[:n]``
        memmove on every full batch)."""
        self._count("scans", "heap.scans")
        batch: list[tuple] = []
        for pid in list(self._page_ids):
            page = self._pool.read(pid)
            rows = [entry[0] for entry in page.payload if entry is not None]
            if batch:
                batch.extend(rows)
            else:
                batch = rows
            while len(batch) > batch_rows:
                yield batch[:batch_rows]
                batch = batch[batch_rows:]
            if len(batch) == batch_rows:
                yield batch
                batch = []
        if batch:
            yield batch

    # -- updates / deletes ----------------------------------------------------

    def update(self, rid: RowId, row: tuple, width: int) -> RowId:
        """Rewrite a row in place; relocate if it no longer fits."""
        self._count("updates", "heap.updates")
        page = self._pool.read(rid.page_id)
        slots: list = page.payload
        entry = slots[rid.slot]
        if entry is None:
            raise ExecutionError(f"update of deleted RID {rid}")
        old_width = entry[1]
        delta = width - old_width
        if delta <= page.free:
            slots[rid.slot] = (row, width)
            page.used += delta
            self._free_map[page.page_id] = page.free
            self._pool.mark_dirty(page.page_id)
            san = self._pool.sanitizer
            if san is not None:
                san.on_row_access(
                    (self.segment_id, rid.page_id, rid.slot), write=True
                )
            return rid
        # Doesn't fit: delete here, insert elsewhere (forwarding not
        # modelled; callers maintain indexes and receive the new RID).
        self.delete(rid)
        return self.insert(row, width)

    def delete(self, rid: RowId) -> None:
        self._count("deletes", "heap.deletes")
        page = self._pool.read(rid.page_id)
        slots: list = page.payload
        entry = slots[rid.slot]
        if entry is None:
            raise ExecutionError(f"double delete of RID {rid}")
        slots[rid.slot] = None
        page.used -= entry[1] + ROW_OVERHEAD
        self._free_map[page.page_id] = page.free
        self._pool.mark_dirty(page.page_id)
        self.row_count -= 1
        san = self._pool.sanitizer
        if san is not None:
            san.on_row_access(
                (self.segment_id, rid.page_id, rid.slot), write=True
            )

    # -- sizing -----------------------------------------------------------------

    @property
    def page_count(self) -> int:
        return len(self._page_ids)

    def page_ids(self) -> list[int]:
        return list(self._page_ids)

    def free_map(self) -> dict[int, int]:
        """Free-space map copy (captured into checkpoint snapshots)."""
        return dict(self._free_map)

    def restore(
        self, page_ids: list[int], free_map: dict[int, int], row_count: int
    ) -> None:
        """Re-attach to pages already in the page store (recovery)."""
        self._page_ids = list(page_ids)
        self._free_map = dict(free_map)
        self.row_count = row_count

    def drop(self) -> None:
        self._pool.free_segment(self.segment_id)
        self._page_ids.clear()
        self._free_map.clear()
        self.row_count = 0
