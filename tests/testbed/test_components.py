"""Tests for the testbed components: deck, variability, generator,
results, cost model, and lock overlap."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.engine.executor import ExecStats
from repro.engine.pager import PoolStats
from repro.testbed.actions import ACTION_DISTRIBUTION, ActionClass
from repro.testbed.crm import crm_tables
from repro.testbed.deck import CardDeck
from repro.testbed.generator import DataGenerator, TenantDataProfile
from repro.testbed.results import ActionResult, ResultSet, quantile
from repro.testbed.simtime import CostModel
from repro.testbed.variability import VariabilityConfig, distribute_tenants
from repro.testbed.worker import LockOverlap, action_resources


class TestVariability:
    """Table 1 of the paper (scaled): instances and tenant spread."""

    @pytest.mark.parametrize(
        "variability,tenants,instances",
        [(0.0, 10_000, 1), (0.5, 10_000, 5_000), (0.65, 10_000, 6_500),
         (0.8, 10_000, 8_000), (1.0, 10_000, 10_000)],
    )
    def test_paper_instance_counts(self, variability, tenants, instances):
        config = VariabilityConfig(variability, tenants)
        assert config.instances == instances
        assert config.total_tables == instances * 10

    def test_paper_example_065(self):
        """'With schema variability 0.65, the first 3,500 schema
        instances have two tenants while the rest have only one.'"""
        config = VariabilityConfig(0.65, 10_000)
        counts = config.tenants_per_instance()
        assert counts[:3500] == [2] * 3500
        assert counts[3500:] == [1] * 3000

    def test_distribution_covers_all_tenants(self):
        config = VariabilityConfig(0.3, 97)
        assignment = distribute_tenants(config)
        assert sorted(assignment) == list(range(1, 98))
        assert set(assignment.values()) == set(range(config.instances))

    def test_bounds_validated(self):
        from repro.engine.errors import PlanError

        with pytest.raises(PlanError):
            VariabilityConfig(1.5, 10)
        with pytest.raises(PlanError):
            VariabilityConfig(0.5, 0)

    @settings(max_examples=60, deadline=None)
    @given(
        variability=st.floats(0.0, 1.0),
        tenants=st.integers(1, 5000),
    )
    def test_even_distribution_property(self, variability, tenants):
        config = VariabilityConfig(variability, tenants)
        counts = config.tenants_per_instance()
        assert sum(counts) == tenants
        assert max(counts) - min(counts) <= 1  # "as evenly as possible"


class TestCardDeck:
    def test_deck_size_exact(self):
        deck = CardDeck(1000, [1, 2, 3])
        assert len(deck) == 1000

    def test_distribution_matches_figure6(self):
        deck = CardDeck(10_000, [1])
        counts = deck.class_counts()
        assert counts[ActionClass.SELECT_LIGHT] == 5000
        assert counts[ActionClass.SELECT_HEAVY] == 1500
        assert counts[ActionClass.UPDATE_LIGHT] == 1760
        assert counts[ActionClass.UPDATE_HEAVY] == 750
        assert counts[ActionClass.ADMIN] == 1  # 0.01% survives rounding

    def test_deal_exhausts(self):
        deck = CardDeck(5, [1])
        cards = [deck.deal() for _ in range(5)]
        assert all(c is not None for c in cards)
        assert deck.deal() is None

    def test_shuffle_is_seeded(self):
        a = [c.action for c in (CardDeck(50, [1], seed=3)._cards)]
        b = [c.action for c in (CardDeck(50, [1], seed=3)._cards)]
        assert a == b

    def test_tenants_assigned_uniformly(self):
        deck = CardDeck(5000, list(range(1, 11)), seed=1)
        tenants = [c.tenant_id for c in deck._cards]
        for tenant in range(1, 11):
            share = tenants.count(tenant) / len(tenants)
            assert 0.05 < share < 0.15


class TestGenerator:
    def test_deterministic(self):
        table = crm_tables()[1]  # account
        g1 = DataGenerator(1).row(5, table, 3, None)
        g2 = DataGenerator(1).row(5, table, 3, None)
        assert g1 == g2

    def test_seed_changes_data(self):
        table = crm_tables()[1]
        assert DataGenerator(1).row(5, table, 3, None) != DataGenerator(2).row(
            5, table, 3, None
        )

    def test_ids_are_sequential(self):
        table = crm_tables()[0]
        rows = [DataGenerator(1).row(1, table, i, None) for i in range(5)]
        assert [r["id"] for r in rows] == [1, 2, 3, 4, 5]

    def test_parent_within_bounds(self):
        table = [t for t in crm_tables() if t.name == "lead"][0]
        for i in range(50):
            row = DataGenerator(1).row(1, table, i, parent_count=7)
            assert 1 <= row["parent"] <= 7

    def test_values_satisfy_logical_types(self):
        for table in crm_tables():
            row = DataGenerator(1).row(1, table, 0, parent_count=3)
            for column in table.columns:
                column.type.check(row[column.lname])

    def test_profile_overrides(self):
        profile = TenantDataProfile(default_rows=5, rows_per_table={"account": 9})
        assert profile.rows_for("account") == 9
        assert profile.rows_for("account_i3") == 9  # instance-suffix aware
        assert profile.rows_for("lead") == 5


class TestResults:
    def make_results(self, times, action=ActionClass.SELECT_LIGHT):
        rs = ResultSet()
        clock = 0.0
        for t in times:
            rs.record(ActionResult(action, 1, 0, clock, t))
            clock += t
        return rs

    def test_quantile_nearest_rank(self):
        assert quantile([1, 2, 3, 4, 5, 6, 7, 8, 9, 10], 0.95) == 10
        assert quantile(list(range(1, 101)), 0.95) == 95
        assert quantile([], 0.95) == 0.0

    def test_baseline_compliance(self):
        rs = self.make_results([1, 2, 3, 4, 100])
        compliance = rs.baseline_compliance({ActionClass.SELECT_LIGHT: 4})
        assert compliance == 80.0

    def test_strip_ramp_up(self):
        rs = self.make_results(list(range(10)))
        assert len(rs.strip_ramp_up(0.2)) == 8

    def test_throughput(self):
        rs = self.make_results([60_000.0])  # one action taking a minute
        assert rs.throughput_per_minute(sessions=1) == pytest.approx(1.0)

    def test_by_class_partition(self):
        rs = ResultSet()
        rs.record(ActionResult(ActionClass.SELECT_LIGHT, 1, 0, 0, 1))
        rs.record(ActionResult(ActionClass.INSERT_LIGHT, 1, 0, 1, 2))
        assert set(rs.by_class()) == {
            ActionClass.SELECT_LIGHT,
            ActionClass.INSERT_LIGHT,
        }


class TestCostModel:
    def test_physical_reads_dominate(self):
        model = CostModel()
        cheap = model.response_ms(
            PoolStats(logical_data=10), ExecStats(statements=1)
        )
        expensive = model.response_ms(
            PoolStats(logical_data=10, physical_data=10),
            ExecStats(statements=1),
        )
        assert expensive > cheap * 5

    def test_lock_conflicts_charged(self):
        model = CostModel()
        base = model.response_ms(PoolStats(), ExecStats())
        contended = model.response_ms(PoolStats(), ExecStats(), lock_conflicts=2)
        assert contended == pytest.approx(base + 2 * model.lock_conflict_ms)

    def test_ddl_charged(self):
        model = CostModel()
        base = model.response_ms(PoolStats(), ExecStats())
        with_ddl = model.response_ms(PoolStats(), ExecStats(), ddl_statements=10)
        assert with_ddl == pytest.approx(base + 10 * model.ddl_ms)


class TestLockOverlap:
    def test_conflicting_exclusive_locks(self):
        overlap = LockOverlap()
        overlap.hold(0, [("t", True)], until_ms=100)
        assert overlap.conflicts(1, [("t", True)], now_ms=50) == 1

    def test_shared_locks_do_not_conflict(self):
        overlap = LockOverlap()
        overlap.hold(0, [("t", False)], until_ms=100)
        assert overlap.conflicts(1, [("t", False)], now_ms=50) == 0

    def test_shared_vs_exclusive_conflicts(self):
        overlap = LockOverlap()
        overlap.hold(0, [("t", False)], until_ms=100)
        assert overlap.conflicts(1, [("t", True)], now_ms=50) == 1

    def test_expired_locks_ignored(self):
        overlap = LockOverlap()
        overlap.hold(0, [("t", True)], until_ms=100)
        assert overlap.conflicts(1, [("t", True)], now_ms=150) == 0

    def test_own_locks_ignored(self):
        overlap = LockOverlap()
        overlap.hold(0, [("t", True)], until_ms=100)
        assert overlap.conflicts(0, [("t", True)], now_ms=50) == 0

    def test_action_resources(self):
        assert action_resources(ActionClass.SELECT_HEAVY, 1, "account") == [
            (("table", "account"), False)
        ]
        assert action_resources(ActionClass.INSERT_LIGHT, 1, "account")[0][1]
        assert action_resources(ActionClass.ADMIN, 1, None) == []
