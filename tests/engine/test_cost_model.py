"""Table-driven unit tests for the planner's cost model.

Covers :meth:`Planner._estimate_access` (static index statistics, the
0.5-per-column fallback, and cardinality-feedback overrides) and the
ADVANCED profile's join ordering / join-method choices on the shared
corpus schema, where every expectation is hand-checkable: p has 60 rows
under unique ``p_pk(id)``, c has 180 rows (3 per parent) under
``c_fk(parent, id)``.
"""

from types import SimpleNamespace

import pytest

from repro.engine import PlanDirectives
from repro.engine.explain import render_plan
from repro.engine.optimizer import PlanError
from repro.quality.corpus import build_engine_database


@pytest.fixture(scope="module")
def db():
    return build_engine_database()


def entry_for(db, table_name):
    """The minimal view of a FROM-list entry `_estimate_access` reads."""
    table = db.catalog.table(table_name)
    return SimpleNamespace(table=table, est_rows=float(table.row_count))


class TestEstimateAccess:
    CASES = [
        # (table, bound columns, expected rows, why)
        ("p", [], 60.0, "unbound: the catalog row count"),
        ("p", ["id"], 1.0, "full unique index match"),
        ("p", ["grp"], 30.0, "no index: 60 * 0.5"),
        ("p", ["grp", "amount"], 15.0, "no index: 60 * 0.5^2"),
        ("c", [], 180.0, "unbound: the catalog row count"),
        ("c", ["parent"], 3.0, "c_fk prefix: 180 rows / 60 distinct"),
        ("c", ["parent", "id"], 1.0, "c_fk full prefix: 180 / 180"),
        ("c", ["id"], 90.0, "id is not a c_fk prefix: 180 * 0.5"),
    ]

    @pytest.mark.parametrize(
        "table,cols,expected,why", CASES, ids=[c[3] for c in CASES]
    )
    def test_static_model(self, db, table, cols, expected, why):
        planner = db._planner
        assert planner._estimate_access(entry_for(db, table), cols) == expected

    def test_feedback_overrides_static(self, db):
        db.feedback.observe("p", ["grp"], 12.0)
        try:
            est = db._planner._estimate_access(entry_for(db, "p"), ["grp"])
            assert est == 12.0
        finally:
            db.feedback.clear()

    def test_feedback_zero_rows_clamped(self, db):
        db.feedback.observe("c", ["val"], 0.0)
        try:
            est = db._planner._estimate_access(entry_for(db, "c"), ["val"])
            assert est == pytest.approx(0.1)
        finally:
            db.feedback.clear()

    def test_unbound_access_ignores_feedback(self, db):
        """Empty-column keys are never stored: the row count is exact."""
        assert not db.feedback.observe("p", [], 7.0)
        assert db._planner._estimate_access(entry_for(db, "p"), []) == 60.0


def access_sequence(root):
    """(op, binding) pairs for every base-table access, in plan order —
    the join order the ADVANCED profile chose."""
    out = []

    def visit(node):
        binding = getattr(node, "binding", None)
        if binding is not None and node.op_name in ("TBSCAN", "IXSCAN"):
            out.append((node.op_name, binding))
        for child in node.children():
            visit(child)

    visit(root)
    return out


def shape(root):
    text = render_plan(root)
    return [line.strip().split()[0] for line in text.splitlines()]


class TestAdvancedJoinOrdering:
    CASES = [
        # (sql, expected access sequence, expected join ops, why)
        (
            "SELECT p.id FROM p, c WHERE p.id = c.parent",
            [("TBSCAN", "p"), ("TBSCAN", "c")],
            ["HSJOIN"],
            "unrestricted: scan both, hash — probing 60x costs more",
        ),
        (
            "SELECT p.id FROM p, c WHERE p.id = c.parent AND p.id = 5",
            [("IXSCAN", "p"), ("IXSCAN", "c")],
            ["NLJOIN"],
            "single-row driver: per-row index probes beat a hash build",
        ),
        (
            "SELECT p.id FROM p, c WHERE p.id = c.parent AND p.grp = 3",
            [("TBSCAN", "p"), ("IXSCAN", "c")],
            ["NLJOIN"],
            "restricted driver (est 30): 30 probes still beat 180+180",
        ),
        (
            "SELECT c.id FROM c, p WHERE p.id = c.parent AND c.id = 100",
            [("TBSCAN", "p"), ("IXSCAN", "c")],
            ["NLJOIN"],
            "p (60 rows) drives even when written second in FROM",
        ),
        (
            "SELECT p.id FROM p, c, c AS d "
            "WHERE p.id = c.parent AND d.parent = p.id",
            [("TBSCAN", "p"), ("TBSCAN", "c"), ("TBSCAN", "d")],
            ["HSJOIN", "HSJOIN"],
            "three-way unrestricted: hash chain off the smallest table",
        ),
    ]

    @pytest.mark.parametrize(
        "sql,accesses,joins,why", CASES, ids=[c[3] for c in CASES]
    )
    def test_order_and_method(self, db, sql, accesses, joins, why):
        root = db.plan(sql)
        assert access_sequence(root) == accesses, render_plan(root)
        ops = shape(root)
        assert [op for op in ops if op.endswith("JOIN")] == joins, ops

    def test_all_orders_return_same_rows(self, db):
        sql = "SELECT p.id, c.id FROM p, c WHERE p.id = c.parent AND p.grp = 2"
        baseline = sorted(db.execute(sql).rows)
        for order in [(0, 1), (1, 0)]:
            root = db.plan(sql, directives=PlanDirectives(join_order=order))
            result = db.execute_plan(root)
            assert sorted(result.rows) == baseline, order


class TestPlanDirectives:
    def test_join_order_is_honored(self, db):
        sql = "SELECT p.id FROM p, c WHERE p.id = c.parent"
        forced = db.plan(sql, directives=PlanDirectives(join_order=(1, 0)))
        assert access_sequence(forced)[0][1] == "c"

    def test_forced_scan_forbids_index(self, db):
        sql = "SELECT p.id FROM p, c WHERE p.id = c.parent AND p.id = 5"
        forced = db.plan(
            sql, directives=PlanDirectives(access_paths=(("scan", "scan")))
        )
        assert all(op == "TBSCAN" for op, _ in access_sequence(forced))

    def test_forced_join_methods(self, db):
        sql = "SELECT p.id FROM p, c WHERE p.id = c.parent AND p.id = 5"
        hashed = db.plan(sql, directives=PlanDirectives(join_methods=(None, "hash")))
        assert "HSJOIN" in shape(hashed)
        nested = db.plan(sql, directives=PlanDirectives(join_methods=(None, "nl")))
        assert "NLJOIN" in shape(nested)

    def test_incomplete_join_order_rejected(self, db):
        sql = "SELECT p.id FROM p, c WHERE p.id = c.parent"
        with pytest.raises(PlanError):
            db.plan(sql, directives=PlanDirectives(join_order=(0,)))


class TestFeedbackDrivenChoices:
    def test_wide_range_demoted_to_scan(self, db):
        """A range matching most of the index teaches its pre-residual
        key; re-planning swaps the useless index scan for TBSCAN."""
        sql = "SELECT c.val FROM c WHERE c.parent <= 64 AND c.id <= 28"
        before = shape(db.plan(sql))
        assert "IXSCAN" in before
        db.feedback.observe("c", ["parent:range"], 180.0)
        try:
            after = shape(db.plan(sql))
            assert "IXSCAN" not in after and "TBSCAN" in after
        finally:
            db.feedback.clear()

    def test_narrow_range_keeps_index(self, db):
        sql = "SELECT c.val FROM c WHERE c.parent <= 64 AND c.id <= 28"
        db.feedback.observe("c", ["parent:range"], 2.0)
        try:
            assert "IXSCAN" in shape(db.plan(sql))
        finally:
            db.feedback.clear()

    def test_empty_driver_flips_hash_to_nested_loop(self, db):
        """Learning that the driving scan yields ~0 rows makes per-row
        probes (which then never happen) the cheaper join method."""
        sql = "SELECT p.id FROM p, c WHERE p.id = c.parent AND p.grp = 3"
        db.feedback.observe("p", ["grp"], 60.0)
        try:
            assert "HSJOIN" in shape(db.plan(sql))
            db.feedback.observe("p", ["grp"], 0.0)
            db.feedback.observe("p", ["grp"], 0.0)
            db.feedback.observe("p", ["grp"], 0.0)
            db.feedback.observe("p", ["grp"], 0.0)
            assert "NLJOIN" in shape(db.plan(sql))
        finally:
            db.feedback.clear()
