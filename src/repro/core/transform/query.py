"""SELECT transformation: the four-step compilation scheme of §6.1.

Given a tenant's logical query, the transformer

1. collects all table names and their used columns,
2. looks up, per table, the fragments and meta-data identifiers that
   represent those columns,
3. generates, per table, a reconstruction query that filters on the
   meta-data identifiers and aligns fragments on their Row columns
   (flat, conjunctive-only — so a sophisticated optimizer can always
   unnest it, Fegaras & Maier rule N8), and
4. patches each reconstruction into the FROM clause of the logical
   query as a nested subquery.

The output is ordinary SQL text over physical tables; callers hand it
to the engine (or, via :mod:`repro.core.transform.flatten`, flatten it
first for SIMPLE-optimizer databases).
"""

from __future__ import annotations

from ...engine.errors import PlanError, UnknownObjectError
from ...engine.plan.logical import (
    QueryBlock,
    block_to_select,
    build_block,
    qualify_block,
)
from ...engine.sql import ast
from ..layouts.base import ALIVE, Fragment, TENANT_META
from ..schema import MultiTenantSchema

#: Output column name carrying the logical Row id in reconstructions
#: built for DML (phase (a) of §6.3).
ROW_ALIAS = "__row"


class TenantParamAllocator:
    """Allocates parameter slots for tenant-identity meta values.

    When a transformed statement is built for the statement cache, every
    ``tenant = <id>`` meta-data filter takes a fresh ``?`` slot instead
    of a literal, so one cached statement serves every tenant of the
    same shape.  Slots start after the logical statement's own
    parameters; at execution time the tenant id is appended ``count``
    times to the caller's parameter list.
    """

    def __init__(self, base_params: int) -> None:
        self.base_params = base_params
        self.count = 0

    def allocate(self) -> ast.Param:
        param = ast.Param(self.base_params + self.count)
        self.count += 1
        return param

    def bind(self, params, tenant_id: int) -> tuple:
        """The physical parameter list for one execution."""
        return tuple(params[: self.base_params]) + (tenant_id,) * self.count


def used_columns(block: QueryBlock) -> dict[str, list[str]]:
    """Columns referenced per binding, in first-use order.

    ``block`` must be qualified.  First-use order keeps generated
    reconstruction queries deterministic.
    """
    order: dict[str, list[str]] = {}

    def walk(expr) -> None:
        if isinstance(expr, ast.ColumnRef):
            if expr.table is not None:
                bucket = order.setdefault(expr.table.lower(), [])
                column = expr.column.lower()
                if column not in bucket:
                    bucket.append(column)
        elif isinstance(expr, ast.BinaryOp):
            walk(expr.left)
            walk(expr.right)
        elif isinstance(expr, (ast.UnaryOp, ast.IsNull)):
            walk(expr.operand)
        elif isinstance(expr, ast.FuncCall):
            for arg in expr.args:
                walk(arg)
        elif isinstance(expr, ast.InList):
            walk(expr.operand)
            for item in expr.items:
                walk(item)
        elif isinstance(expr, ast.InSubquery):
            walk(expr.operand)

    for item in block.items:
        walk(item.expr)
    for conjunct in block.conjuncts:
        walk(conjunct)
    for expr in block.group_by:
        walk(expr)
    if block.having is not None:
        walk(block.having)
    for order_item in block.order_by:
        walk(order_item.expr)
    return order


def select_needed_fragments(
    fragments: list[Fragment],
    used: list[str],
    binding: str,
    *,
    all_fragments: bool = False,
) -> list[Fragment]:
    """Which fragments a reconstruction must read ("if a query does not
    reference one of the tables, then there is no need to read it in").

    Shared by the single-tenant and cross-tenant builders — the
    cross-tenant path also uses the selection as a tenant's *structure
    signature* for fusing statements across tenants.
    """
    if not fragments:
        raise PlanError(f"no fragments for source {binding!r}")
    covered: set[str] = set()
    needed: list[Fragment] = []
    for fragment in fragments:
        wanted = [c for c in used if fragment.covers(c) and c not in covered]
        if wanted or all_fragments:
            needed.append(fragment)
            covered.update(wanted)
    missing = [c for c in used if c not in covered]
    if missing:
        raise UnknownObjectError(
            f"columns {missing} of {binding!r} not stored by any fragment"
        )
    if not needed:
        needed = [fragments[0]]
    return needed


def build_reconstruction(
    fragments: list[Fragment],
    used: list[str],
    binding: str,
    *,
    include_row: bool = False,
    soft_delete: bool = False,
    all_fragments: bool = False,
    tenant_params: TenantParamAllocator | None = None,
) -> ast.SubquerySource:
    """The table-reconstruction query for one logical source (step 3).

    Only fragments contributing used columns participate; ``include_row``
    additionally exposes the anchor's Row id as ``__row``;
    ``all_fragments`` forces every fragment in (DML over all chunks,
    e.g. soft deletes).
    """
    needed = select_needed_fragments(
        fragments, used, binding, all_fragments=all_fragments
    )

    aliases = {id(f): f"f{i}" for i, f in enumerate(needed)}
    anchor = needed[0]
    if len(needed) > 1 and any(f.row_column is None for f in needed):
        raise PlanError(
            f"source {binding!r} needs row alignment but a fragment has no row column"
        )

    items: list[ast.SelectItem] = []
    emitted = set()
    for column in used:
        if column in emitted:
            continue
        emitted.add(column)
        for fragment in needed:
            if fragment.covers(column):
                loc = fragment.column_map()[column]
                expr: ast.Expr = ast.ColumnRef(aliases[id(fragment)], loc.physical)
                if loc.cast:
                    expr = ast.FuncCall(loc.cast, (expr,))
                items.append(ast.SelectItem(expr, column))
                break
    if include_row:
        if anchor.row_column is None:
            raise PlanError(f"source {binding!r} has no row identity for DML")
        items.append(
            ast.SelectItem(
                ast.ColumnRef(aliases[id(anchor)], anchor.row_column), ROW_ALIAS
            )
        )
    if not items:
        # Anchor-only reconstruction for queries that touch no columns
        # (COUNT(*)): expose the row id or the first physical column.
        if anchor.row_column is not None:
            items.append(
                ast.SelectItem(
                    ast.ColumnRef(aliases[id(anchor)], anchor.row_column), ROW_ALIAS
                )
            )
        else:
            name, loc = anchor.columns[0]
            items.append(
                ast.SelectItem(ast.ColumnRef(aliases[id(anchor)], loc.physical), name)
            )

    sources = [ast.TableSource(f.table, aliases[id(f)]) for f in needed]

    conjuncts: list[ast.Expr] = []
    for fragment in needed:
        alias = aliases[id(fragment)]
        for meta_col, value in fragment.meta:
            rhs: ast.Expr
            if tenant_params is not None and meta_col == TENANT_META:
                rhs = tenant_params.allocate()
            else:
                rhs = ast.Literal(value)
            conjuncts.append(
                ast.BinaryOp("=", ast.ColumnRef(alias, meta_col), rhs)
            )
        if soft_delete:
            conjuncts.append(
                ast.BinaryOp("=", ast.ColumnRef(alias, ALIVE), ast.Literal(1))
            )
    anchor_alias = aliases[id(anchor)]
    for fragment in needed[1:]:
        conjuncts.append(
            ast.BinaryOp(
                "=",
                ast.ColumnRef(anchor_alias, anchor.row_column),
                ast.ColumnRef(aliases[id(fragment)], fragment.row_column),
            )
        )

    where = None
    for conjunct in conjuncts:
        where = conjunct if where is None else ast.BinaryOp("AND", where, conjunct)

    select = ast.Select(
        items=tuple(items), sources=tuple(sources), where=where
    )
    return ast.SubquerySource(select, binding)


class QueryTransformer:
    """Transforms logical SELECTs into physical SELECTs for one layout."""

    def __init__(self, layout, schema: MultiTenantSchema) -> None:
        self.layout = layout
        self.schema = schema

    def transform_predicate(
        self,
        tenant_id: int,
        expr: ast.Expr,
        tenant_params: TenantParamAllocator | None = None,
    ) -> ast.Expr:
        """Transform ``IN (SELECT ...)`` subqueries inside a predicate."""
        if isinstance(expr, ast.InSubquery):
            return ast.InSubquery(
                self.transform_predicate(tenant_id, expr.operand, tenant_params),
                self.transform_select(
                    tenant_id, expr.subquery, tenant_params=tenant_params
                ),
                expr.negated,
            )
        if isinstance(expr, ast.BinaryOp):
            return ast.BinaryOp(
                expr.op,
                self.transform_predicate(tenant_id, expr.left, tenant_params),
                self.transform_predicate(tenant_id, expr.right, tenant_params),
            )
        if isinstance(expr, ast.UnaryOp):
            return ast.UnaryOp(
                expr.op,
                self.transform_predicate(tenant_id, expr.operand, tenant_params),
            )
        if isinstance(expr, ast.IsNull):
            return ast.IsNull(
                self.transform_predicate(tenant_id, expr.operand, tenant_params),
                expr.negated,
            )
        if isinstance(expr, ast.FuncCall):
            return ast.FuncCall(
                expr.name,
                tuple(
                    self.transform_predicate(tenant_id, a, tenant_params)
                    for a in expr.args
                ),
                expr.star,
                expr.distinct,
            )
        if isinstance(expr, ast.InList):
            return ast.InList(
                self.transform_predicate(tenant_id, expr.operand, tenant_params),
                tuple(
                    self.transform_predicate(tenant_id, i, tenant_params)
                    for i in expr.items
                ),
                expr.negated,
            )
        return expr

    def transform_select(
        self,
        tenant_id: int,
        select: ast.Select,
        *,
        include_row: bool = False,
        tenant_params: TenantParamAllocator | None = None,
    ) -> ast.Select:
        """Steps 1–4 for one statement (recursing into logical FROM
        subqueries)."""
        lookup = self.schema.logical_lookup(tenant_id)
        block = qualify_block(build_block(select), lookup)
        usage = used_columns(block)
        sources: list[ast.Source] = []
        for source in block.sources:
            if isinstance(source, ast.SubquerySource):
                inner = self.transform_select(
                    tenant_id, source.select, tenant_params=tenant_params
                )
                sources.append(ast.SubquerySource(inner, source.alias))
                continue
            if not self.schema.has_table(source.name):
                # Physical / passthrough table (layout internals, results
                # tables, ...): leave untouched.
                sources.append(source)
                continue
            binding = source.binding.lower()
            fragments = self.layout.fragments(tenant_id, source.name)
            sources.append(
                build_reconstruction(
                    fragments,
                    usage.get(binding, []),
                    binding,
                    include_row=include_row,
                    soft_delete=self.layout.soft_delete,
                    tenant_params=tenant_params,
                )
            )
        where = block_to_select(block).where
        return ast.Select(
            items=tuple(block.items),
            sources=tuple(sources),
            where=self.transform_predicate(tenant_id, where, tenant_params)
            if where is not None
            else None,
            group_by=tuple(block.group_by),
            having=self.transform_predicate(tenant_id, block.having, tenant_params)
            if block.having is not None
            else None,
            order_by=tuple(block.order_by),
            limit=block.limit,
            distinct=block.distinct,
        )
