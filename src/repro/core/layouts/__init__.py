"""Schema-mapping layouts (Figure 4 of the paper).

============  =====================================  =================
Registry key  Class                                  Paper figure
============  =====================================  =================
basic         :class:`BasicLayout`                   (described in §3)
private       :class:`PrivateTableLayout`            Figure 4(a)
extension     :class:`ExtensionTableLayout`          Figure 4(b)
universal     :class:`UniversalTableLayout`          Figure 4(c)
pivot         :class:`PivotTableLayout`              Figure 4(d)
chunk         :class:`ChunkTableLayout`              Figure 4(e)
chunk_folding :class:`ChunkFoldingLayout`            Figure 4(f)
============  =====================================  =================
"""

from .base import ColumnLoc, Fragment, Layout  # noqa: F401
from .basic import BasicLayout  # noqa: F401
from .private import PrivateTableLayout  # noqa: F401
from .extension import ExtensionTableLayout  # noqa: F401
from .universal import UniversalTableLayout  # noqa: F401
from .pivot import PivotTableLayout  # noqa: F401
from .chunk import ChunkTableLayout  # noqa: F401
from .chunk_folding import ChunkFoldingLayout  # noqa: F401

LAYOUTS = {
    cls.name: cls
    for cls in (
        BasicLayout,
        PrivateTableLayout,
        ExtensionTableLayout,
        UniversalTableLayout,
        PivotTableLayout,
        ChunkTableLayout,
        ChunkFoldingLayout,
    )
}


def make_layout(name: str, db, schema, **options) -> Layout:
    """Instantiate a layout by registry key."""
    try:
        cls = LAYOUTS[name]
    except KeyError:
        raise ValueError(
            f"unknown layout {name!r}; choose from {sorted(LAYOUTS)}"
        ) from None
    return cls(db, schema, **options)
