"""Lock/transaction stress: interleaved workers, no lost updates.

The engine supports one open transaction at a time (§4.2: a transaction
spans at most one user request), so concurrency is modelled the way the
testbed does it — workers take turns running complete transactions
against shared rows while the lock table accounts conflicts and waits.
The invariants: read-modify-write increments are never lost, rolled-back
work leaves no trace, and every lock metric is non-negative and
monotonically non-decreasing across the whole run.
"""


import pytest

from repro.engine import Database


WORKERS = 4
ROUNDS = 30
ROWS = 3


@pytest.fixture()
def db():
    database = Database()
    database.execute(
        "CREATE TABLE counters (id INTEGER NOT NULL, value INTEGER NOT NULL)"
    )
    database.execute("CREATE UNIQUE INDEX counters_pk ON counters (id)")
    for row_id in range(ROWS):
        database.execute("INSERT INTO counters VALUES (?, ?)", [row_id, 0])
    return database


def read_value(db, row_id):
    return db.execute(
        "SELECT value FROM counters WHERE id = ?", [row_id]
    ).scalar()


class TestInterleavedTransactions:
    def test_no_lost_updates(self, db, replay_rng):
        """Round-robin read-modify-write increments; every committed
        increment must be visible in the final state, every rolled-back
        one must not."""
        rng = replay_rng
        committed = {row_id: 0 for row_id in range(ROWS)}
        snapshots = []
        for _round_no in range(ROUNDS):
            for worker in range(WORKERS):
                row_id = rng.randrange(ROWS)
                db.execute("BEGIN")
                # Lock accounting mirrors the testbed: an exclusive
                # row lock per writer; overlap with other workers'
                # most recent footprint counts as conflicts.
                conflicts = db.locks.acquire(
                    worker, ("rows", "counters", row_id), exclusive=True
                )
                if conflicts:
                    db.locks.record_wait(conflicts, conflicts * 2.5)
                current = read_value(db, row_id)
                db.execute(
                    "UPDATE counters SET value = ? WHERE id = ?",
                    [current + 1, row_id],
                )
                if rng.random() < 0.25:
                    db.execute("ROLLBACK")
                else:
                    db.execute("COMMIT")
                    committed[row_id] += 1
                db.locks.release_session(worker)
                snapshots.append(db.locks.stats.snapshot())
        for row_id in range(ROWS):
            assert read_value(db, row_id) == committed[row_id]

        # Lock metrics: non-negative, monotonic across the run.
        previous = None
        for snap in snapshots:
            assert snap.acquisitions >= 0
            assert snap.conflicts >= 0
            assert snap.waits >= 0
            assert snap.wait_ms >= 0.0
            if previous is not None:
                delta = snap.delta(previous)
                assert delta.acquisitions >= 0
                assert delta.conflicts >= 0
                assert delta.waits >= 0
                assert delta.wait_ms >= 0.0
            previous = snap
        final = snapshots[-1]
        assert final.acquisitions == WORKERS * ROUNDS
        assert final.waits <= final.conflicts

    def test_registry_mirrors_lock_ledger(self, db):
        """locks.* registry counters stay in lockstep with LockStats."""
        for worker in range(WORKERS):
            db.locks.acquire(worker, ("table", "counters"), exclusive=True)
        db.locks.record_wait(2, 7.0)
        stats = db.locks.stats
        assert db.metrics.value("locks.acquisitions") == stats.acquisitions
        assert db.metrics.value("locks.conflicts") == stats.conflicts
        assert db.metrics.value("locks.waits") == stats.waits
        assert db.metrics.value("locks.wait_ms") == pytest.approx(
            stats.wait_ms
        )
        histogram = db.metrics.histogram("locks.wait_duration_ms")
        assert histogram.count == 1
        assert histogram.mean == pytest.approx(3.5)

    def test_record_wait_rejects_negative(self, db):
        with pytest.raises(ValueError):
            db.locks.record_wait(-1, 0.0)
        with pytest.raises(ValueError):
            db.locks.record_wait(1, -0.5)

    def test_sanitized_run_stays_clean(self, db):
        """The no-lost-updates discipline (row locks for every access)
        must produce zero sanitizer findings."""
        from repro.analysis.sanitizers import Sanitizer

        sanitizer = Sanitizer(metrics=db.metrics)
        sanitizer.attach(db)
        for iteration in range(12):
            worker = 1 + iteration % WORKERS
            row_id = iteration % ROWS
            db.execute("BEGIN")
            db.locks.acquire(worker, ("rows", "counters", row_id), exclusive=True)
            current = read_value(db, row_id)
            db.execute(
                "UPDATE counters SET value = ? WHERE id = ?",
                [current + 1, row_id],
            )
            db.execute("COMMIT")
            db.locks.release_session(worker)
        assert sanitizer.report.ok
        assert sanitizer.report.findings == []

    def test_sanitizer_flags_unlocked_sharing(self, db):
        """Two sessions writing the same row with no common lock is the
        lockset race CON001 exists for."""
        from repro.analysis.sanitizers import Sanitizer

        sanitizer = Sanitizer()
        sanitizer.attach(db)
        # Three accesses: the candidate lockset seeds at the second
        # session's locks and refines to empty on the third (Eraser
        # can't know the first accessor's locks retroactively).
        for worker in (1, 2, 1):
            db.locks.acquire(worker, ("private", worker), exclusive=True)
            current = read_value(db, 0)
            db.execute(
                "UPDATE counters SET value = ? WHERE id = ?", [current + 1, 0]
            )
            db.locks.release_session(worker)
        rules = sanitizer.report.by_rule()
        assert rules.get("CON001", 0) >= 1

    def test_rollback_storm_preserves_consistency(self, db):
        """Alternating commit/rollback across workers sharing one row:
        the value advances exactly once per committed transaction even
        when every other transaction aborts mid-flight."""
        for iteration in range(20):
            worker = iteration % WORKERS
            db.execute("BEGIN")
            db.locks.acquire(worker, ("rows", "counters", 0), exclusive=True)
            current = read_value(db, 0)
            db.execute(
                "UPDATE counters SET value = ? WHERE id = ?", [current + 1, 0]
            )
            db.execute("ROLLBACK" if iteration % 2 else "COMMIT")
            db.locks.release_session(worker)
        assert read_value(db, 0) == 10
        assert db.transactions.committed == 10
        assert db.transactions.rolled_back == 10
        assert db.metrics.value("txn.committed") == 10
        assert db.metrics.value("txn.rolled_back") == 10


class TestLockTableEdgeCases:
    def test_shared_to_exclusive_upgrade_accounting(self, db):
        """A session converting its shared hold to exclusive is an
        upgrade, not a fresh hold: one resource entry, mode sticky at
        exclusive, ``stats.upgrades`` ticks once."""
        locks = db.locks
        resource = ("table", "counters")
        locks.acquire(1, resource, exclusive=False)
        assert locks.stats.upgrades == 0
        locks.acquire(1, resource, exclusive=True)
        assert locks.stats.upgrades == 1
        assert db.metrics.value("locks.upgrades") == 1
        assert locks.held_by(1) == 1
        # A later shared request must not downgrade the exclusive hold:
        # a second session now conflicts.
        locks.acquire(1, resource, exclusive=False)
        assert locks.stats.upgrades == 1  # no double count
        assert locks.acquire(2, resource, exclusive=False) == 1

    def test_exclusive_stays_exclusive_no_upgrade(self, db):
        locks = db.locks
        locks.acquire(1, ("r", 1), exclusive=True)
        locks.acquire(1, ("r", 1), exclusive=True)
        assert locks.stats.upgrades == 0
        assert locks.stats.acquisitions == 2

    def test_release_session_clears_empty_entries(self, db):
        """``_holders`` must not accumulate dead resource keys after
        the last holder leaves."""
        locks = db.locks
        locks.acquire(1, ("r", 1), exclusive=True)
        locks.acquire(1, ("r", 2), exclusive=False)
        locks.acquire(2, ("r", 2), exclusive=False)
        locks.release_session(1)
        assert ("r", 1) not in locks._holders
        assert ("r", 2) in locks._holders  # session 2 still holds it
        locks.release_session(2)
        assert locks._holders == {}

    def test_single_release_clears_empty_entry(self, db):
        locks = db.locks
        locks.acquire(1, ("r", 1), exclusive=True)
        assert locks.release(1, ("r", 1)) is True
        assert locks._holders == {}
        assert locks.release(1, ("r", 1)) is False
        assert locks.release(9, ("never", "held")) is False

    def test_held_by_under_reentrant_acquires(self, db):
        """Re-entrant acquires of one resource count as one hold."""
        locks = db.locks
        for _ in range(5):
            locks.acquire(3, ("r", "a"), exclusive=False)
        locks.acquire(3, ("r", "b"), exclusive=True)
        assert locks.held_by(3) == 2
        assert locks.resources_held(3) == [("r", "a"), ("r", "b")]
        locks.release(3, ("r", "a"))
        assert locks.held_by(3) == 1
        locks.release_session(3)
        assert locks.held_by(3) == 0
