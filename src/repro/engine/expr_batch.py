"""Batch-level compilation of row expressions.

The tuple-at-a-time executor pays one Python call *per row per
expression* plus a generator/``tuple()``/``all()`` allocation per row
per operator.  This module turns lists of per-row :data:`Compiled
<repro.engine.expr.Compiled>` closures into **one closure per batch**:
the comprehension body is generated as source text and compiled with
``eval``, so the per-row loop runs inside a single C-level list
comprehension instead of N interpreter dispatches.

Fast paths: closures that :class:`~repro.engine.expr.ExprCompiler`
tagged as plain slot reads (``fn.slot``) vectorize into a single
``operator.itemgetter`` call over the whole batch — no per-row Python
frame at all.

Compiled batch programs are pure functions of the plan node's
expressions, so they are built once per plan node and cached on the
node itself (:func:`node_program`); cached plans keep their programs
across executions.
"""

from __future__ import annotations

from operator import itemgetter
from typing import Callable, Sequence

from .columnstore import ColumnBatch
from .expr import _COMPARE, _coerce_pair
from .values import sort_key

#: Comparison closures whose operator can be inlined as source text
#: (identity-keyed: ``.cmp`` tags carry the shared ``_COMPARE`` lambdas).
_CMP_SOURCE = {
    _COMPARE[op]: source
    for op, source in (
        ("=", "=="),
        ("<>", "!="),
        ("<", "<"),
        ("<=", "<="),
        (">", ">"),
        (">=", ">="),
    )
}

#: A compiled batch transform: (rows, params) -> rows.
BatchFn = Callable[[list, Sequence[object]], list]

_MISSING = object()


def _codegen(source: str, namespace: dict):
    """Compile generated comprehension source into a callable."""
    return eval(compile(source, "<expr_batch>", "eval"), namespace)


def node_program(node, key: str, builder):
    """The compiled batch program ``key`` for a plan node, built once.

    Programs depend only on the node's compiled expressions, so they
    stay valid for the node's whole lifetime (plan caches included) and
    are shared by every executor running the plan.
    """
    cache = node.__dict__.get("_batch_programs")
    if cache is None:
        cache = node.__dict__["_batch_programs"] = {}
    program = cache.get(key)
    if program is None:
        program = cache[key] = builder()
    return program


# -- predicates ---------------------------------------------------------------


def _row_filter(predicates: Sequence) -> BatchFn:
    namespace: dict = {}
    conditions = []
    for i, predicate in enumerate(predicates):
        namespace[f"p{i}"] = predicate
        conditions.append(f"p{i}(r, params) is True")
    source = (
        f"lambda rows, params: [r for r in rows if {' and '.join(conditions)}]"
    )
    return _codegen(source, namespace)


def _columnar_predicate(predicate):
    """Selection program for one ``.cmp``-tagged comparison, or ``None``.

    The program maps ``(batch, params, sel)`` to the narrowed selection
    (row positions within the batch where the predicate is exactly
    True).  Semantics replicate the tagged row closure: NULL operands
    are never True, date/ISO-string pairs coerce via ``_coerce_pair``,
    and incompatible types compare under ``sort_key`` total order.
    Stored columns are type-homogeneous (``SqlType.check`` enforces
    declared types), so one probe value decides per batch whether the
    slow coercion path is needed at all.
    """
    inset = getattr(predicate, "inset", None)
    if inset is not None:
        in_slot, values, negated = inset

        def run_inset(batch: ColumnBatch, params, sel):
            # NULL operands are never True (the row closure returns
            # None for them), so membership alone decides; literal
            # values are hashable, and ``in`` matches the row closure's
            # ``==`` membership test (bool/int unification included).
            column = batch.col(in_slot)
            if negated:
                if sel is None:
                    return [
                        i
                        for i, v in enumerate(column)
                        if v is not None and v not in values
                    ]
                return [
                    i
                    for i in sel
                    if (v := column[i]) is not None and v not in values
                ]
            if sel is None:
                return [
                    i
                    for i, v in enumerate(column)
                    if v is not None and v in values
                ]
            return [
                i
                for i in sel
                if (v := column[i]) is not None and v in values
            ]

        return run_inset
    cmp = getattr(predicate, "cmp", None)
    if cmp is None:
        return None
    slot, fn, other, swapped = cmp
    # Known comparison operators inline as source text, so the hot
    # non-coercing loop below runs without a per-value lambda call.
    sym = _CMP_SOURCE.get(fn)
    if sym is None:
        dense_fast = sparse_fast = None
    else:
        cond = f"(c {sym} v)" if swapped else f"(v {sym} c)"
        dense_fast = _codegen(
            "lambda column, c: [i for i, v in enumerate(column) "
            f"if v is not None and {cond} is True]",
            {},
        )
        sparse_fast = _codegen(
            "lambda column, c, sel: [i for i in sel "
            f"if (v := column[i]) is not None and {cond} is True]",
            {},
        )

    def careful(column, c, sel):
        pairs = (
            enumerate(column) if sel is None else ((i, column[i]) for i in sel)
        )
        out = []
        for i, v in pairs:
            if v is None:
                continue
            a, b = (c, v) if swapped else (v, c)
            a, b = _coerce_pair(a, b)
            try:
                ok = fn(a, b)
            except TypeError:
                ok = fn(sort_key(a), sort_key(b))
            if ok is True:
                out.append(i)
        return out

    def run(batch: ColumnBatch, params, sel):
        c = other(None, params)
        if c is None:
            return []  # comparison against NULL is never True
        column = batch.col(slot)
        probe = next(
            (column[i] for i in (range(len(column)) if sel is None else sel)
             if column[i] is not None),
            None,
        )
        if probe is None:
            return []
        a0, b0 = (c, probe) if swapped else (probe, c)
        ca, cb = _coerce_pair(a0, b0)
        if ca is not a0 or cb is not b0:
            # Date/string coercion applies to this column/value pair:
            # take the per-value path for exact row-closure semantics.
            return careful(column, c, sel)
        try:
            if dense_fast is not None:
                if sel is None:
                    return dense_fast(column, c)
                return sparse_fast(column, c, sel)
            if swapped:
                if sel is None:
                    return [
                        i
                        for i, v in enumerate(column)
                        if v is not None and fn(c, v) is True
                    ]
                return [
                    i
                    for i in sel
                    if (v := column[i]) is not None and fn(c, v) is True
                ]
            if sel is None:
                return [
                    i
                    for i, v in enumerate(column)
                    if v is not None and fn(v, c) is True
                ]
            return [
                i
                for i in sel
                if (v := column[i]) is not None and fn(v, c) is True
            ]
        except TypeError:
            # Mixed incomparable types mid-column (never the case for
            # stored data, but stay exact): redo with the total order.
            return careful(column, c, sel)

    return run


def compile_filter(predicates: Sequence) -> BatchFn | None:
    """``[r for r in rows if p0(r) is True and p1(r) is True ...]``.

    Returns ``None`` for an empty conjunction (the caller passes the
    batch through untouched instead of copying it).  On a
    :class:`~repro.engine.columnstore.ColumnBatch`, predicates tagged by
    the expression compiler as column-vs-constant comparisons evaluate
    against stored columns first — narrowing a selection vector — and
    only the surviving rows are ever assembled into tuples (late
    materialization); untagged predicates then run row-at-a-time over
    the survivors.
    """
    if not predicates:
        return None
    row_program = _row_filter(predicates)
    columnar = [_columnar_predicate(p) for p in predicates]
    tagged = [run for run in columnar if run is not None]
    untagged = [p for p, run in zip(predicates, columnar) if run is None]
    if not tagged:
        return row_program
    residual_program = _row_filter(untagged) if untagged else None

    def program(rows, params):
        if type(rows) is not ColumnBatch:
            return row_program(rows, params)
        sel = None
        for run in tagged:
            sel = run(rows, params, sel)
            if not sel:
                return []
        narrowed = rows.take(sel)
        if residual_program is not None:
            return residual_program(narrowed.rows(), params)
        return narrowed

    return program


# -- projections / key extraction ---------------------------------------------


def _column_program(expr):
    """``(batch, params) -> value list`` straight off stored columns.

    Returns ``None`` when the expression has no columnar evaluation:
    slot reads return the stored column itself, constants replicate,
    and ``.map1``-tagged unary functions (``TO_INT(colN)`` casts and
    friends) map one column through a single C-level comprehension —
    NULLs propagate, matching the row closure.
    """
    slot = getattr(expr, "slot", None)
    if slot is not None:
        return lambda batch, params: batch.col(slot)
    const = getattr(expr, "const", _MISSING)
    if const is not _MISSING:
        return lambda batch, params: [const] * len(batch)
    map1 = getattr(expr, "map1", None)
    if map1 is not None:
        map_slot, fn = map1
        return lambda batch, params: [
            None if v is None else fn(v) for v in batch.col(map_slot)
        ]
    return None


def compile_tuples(exprs: Sequence) -> BatchFn:
    """One output tuple per input row: projections, join keys, group
    keys.  All-slot expression lists become a single ``itemgetter``;
    over a :class:`ColumnBatch`, any list whose members all evaluate
    columnar (:func:`_column_program`) zips value lists instead of
    assembling input row tuples."""
    if not exprs:
        empty = ()
        return lambda rows, params: [empty] * len(rows)
    slots = [getattr(e, "slot", None) for e in exprs]
    if all(s is not None for s in slots):
        if len(slots) == 1:
            getter = itemgetter(slots[0])
            slot0 = slots[0]

            def single(rows, params):
                if type(rows) is ColumnBatch:
                    return [(v,) for v in rows.col(slot0)]
                return [(v,) for v in map(getter, rows)]

            return single
        getter = itemgetter(*slots)

        def multi(rows, params):
            if type(rows) is ColumnBatch:
                # Keys straight off the stored columns — no row tuples.
                return list(zip(*[rows.col(s) for s in slots]))
            return list(map(getter, rows))

        return multi
    namespace: dict = {}
    parts = []
    for i, expr in enumerate(exprs):
        namespace[f"e{i}"] = expr
        parts.append(f"e{i}(r, params)")
    body = ", ".join(parts) + ("," if len(parts) == 1 else "")
    source = f"lambda rows, params: [({body}) for r in rows]"
    row_program = _codegen(source, namespace)
    programs = [_column_program(e) for e in exprs]
    if any(p is None for p in programs):
        return row_program

    def columnar(rows, params):
        if type(rows) is ColumnBatch:
            return list(zip(*[p(rows, params) for p in programs]))
        return row_program(rows, params)

    return columnar


def compile_values(expr) -> BatchFn:
    """One output *value* per input row (aggregate arguments).

    A slot read over a :class:`ColumnBatch` returns the stored column
    itself (callers treat value lists as read-only), so aggregates over
    columnar scans never assemble row tuples at all; ``.map1``-tagged
    casts map the stored column the same way.
    """
    slot = getattr(expr, "slot", None)
    if slot is not None:
        getter = itemgetter(slot)

        def values(rows, params):
            if type(rows) is ColumnBatch:
                return rows.col(slot)
            return list(map(getter, rows))

        return values
    const = getattr(expr, "const", _MISSING)
    if const is not _MISSING:
        return lambda rows, params: [const] * len(rows)
    row_program = _codegen(
        "lambda rows, params: [e0(r, params) for r in rows]", {"e0": expr}
    )
    column_program = _column_program(expr)
    if column_program is None:
        return row_program

    def mapped(rows, params):
        if type(rows) is ColumnBatch:
            return column_program(rows, params)
        return row_program(rows, params)

    return mapped


# -- sorting ------------------------------------------------------------------


class _Desc:
    """Inverts comparisons for one descending component of a composite
    sort key (only needed when ascending and descending keys mix)."""

    __slots__ = ("key",)

    def __init__(self, key) -> None:
        self.key = key

    def __lt__(self, other) -> bool:
        return other.key < self.key

    def __eq__(self, other) -> bool:
        return other.key == self.key


def compile_sort_keys(keys: Sequence[tuple]) -> tuple[BatchFn, bool]:
    """``(program, reverse)`` for an ORDER BY key list.

    The program maps a batch to one composite decorated key per row
    (``sort_key`` applied to every component, computed exactly once per
    row).  Uniform directions sort with ``reverse``; mixed directions
    wrap the descending components in :class:`_Desc`.
    """
    descending = [d for _, d in keys]
    uniform = all(descending) or not any(descending)
    namespace: dict = {"sort_key": sort_key, "_Desc": _Desc}
    parts = []
    for i, (expr, desc) in enumerate(keys):
        namespace[f"e{i}"] = expr
        part = f"sort_key(e{i}(r, params))"
        if not uniform and desc:
            part = f"_Desc({part})"
        parts.append(part)
    if len(parts) == 1:
        body = parts[0]  # single key: no tuple wrapper needed
    else:
        body = "(" + ", ".join(parts) + ")"
    source = f"lambda rows, params: [{body} for r in rows]"
    return _codegen(source, namespace), (uniform and descending[0])


def sort_rows(node, rows: list, params: Sequence[object]) -> list:
    """Sort a PSort node's input: decorate once (one composite key per
    row), sort once on precomputed keys, undecorate.

    Replaces the historical one-``list.sort``-per-key loop whose key
    lambda re-evaluated the expression and ``sort_key`` for every row in
    every pass.  Stability is preserved (ties keep input order), so both
    executors produce identical orders.
    """
    if not node.keys or len(rows) < 2:
        return rows
    program, reverse = node_program(
        node, "sort", lambda: compile_sort_keys(node.keys)
    )
    decorated = program(rows, params)
    order = sorted(
        range(len(rows)), key=decorated.__getitem__, reverse=reverse
    )
    return [rows[i] for i in order]
