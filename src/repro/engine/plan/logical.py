"""Logical query blocks: normalization, qualification, and flattening.

A :class:`QueryBlock` is the optimizer's working form of a SELECT: the
WHERE clause split into an ordered conjunct list, sources in textual
order, and every column reference fully qualified.

:func:`flatten_block` implements the subquery unnesting the paper leans
on (Section 6.1): Fegaras & Maier's rule N8 guarantees that a FROM
subquery with only conjunctive predicates can be merged into its parent.
The ADVANCED optimizer profile applies it; the SIMPLE profile does not —
reproducing the DB2/MySQL split of Test 1.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Callable

from ..errors import PlanError, UnknownObjectError
from ..expr import contains_aggregate
from ..sql import ast

#: Resolves a physical table name to its column names (lowered).
ColumnLookup = Callable[[str], list[str]]


@dataclass
class QueryBlock:
    """Normalized SELECT."""

    items: list[ast.SelectItem]
    sources: list[ast.Source]
    conjuncts: list[ast.Expr]
    group_by: list[ast.Expr]
    having: ast.Expr | None
    order_by: list[ast.OrderItem]
    limit: int | None
    distinct: bool

    @property
    def is_aggregating(self) -> bool:
        return bool(self.group_by) or any(
            contains_aggregate(i.expr) for i in self.items
        )

    def output_names(self) -> list[str]:
        names = []
        for i, item in enumerate(self.items):
            names.append(output_name(item, i))
        return names


def output_name(item: ast.SelectItem, position: int) -> str:
    if item.alias:
        return item.alias.lower()
    if isinstance(item.expr, ast.ColumnRef):
        return item.expr.column.lower()
    return f"c{position}"


def split_conjuncts(expr: ast.Expr | None) -> list[ast.Expr]:
    """Split a predicate on top-level ANDs, preserving textual order."""
    if expr is None:
        return []
    if isinstance(expr, ast.BinaryOp) and expr.op.upper() == "AND":
        return split_conjuncts(expr.left) + split_conjuncts(expr.right)
    return [expr]


def conjoin(conjuncts: list[ast.Expr]) -> ast.Expr | None:
    if not conjuncts:
        return None
    result = conjuncts[0]
    for conjunct in conjuncts[1:]:
        result = ast.BinaryOp("AND", result, conjunct)
    return result


def build_block(select: ast.Select) -> QueryBlock:
    return QueryBlock(
        items=list(select.items),
        sources=list(select.sources),
        conjuncts=split_conjuncts(select.where),
        group_by=list(select.group_by),
        having=select.having,
        order_by=list(select.order_by),
        limit=select.limit,
        distinct=select.distinct,
    )


def block_to_select(block: QueryBlock) -> ast.Select:
    return ast.Select(
        items=tuple(block.items),
        sources=tuple(block.sources),
        where=conjoin(block.conjuncts),
        group_by=tuple(block.group_by),
        having=block.having,
        order_by=tuple(block.order_by),
        limit=block.limit,
        distinct=block.distinct,
    )


# ---------------------------------------------------------------------------
# Qualification: give every column reference an explicit binding and
# expand ``*`` / ``alias.*`` select items.
# ---------------------------------------------------------------------------


def source_output_columns(source: ast.Source, lookup: ColumnLookup) -> list[str]:
    if isinstance(source, ast.TableSource):
        return lookup(source.name)
    names = []
    inner = build_block(source.select)
    for i, item in enumerate(inner.items):
        if isinstance(item.expr, ast.Star):
            raise PlanError(
                "nested subqueries must name their output columns "
                "(no * inside derived tables)"
            )
        names.append(output_name(item, i))
    return names


def qualify_block(block: QueryBlock, lookup: ColumnLookup) -> QueryBlock:
    """Qualify every column reference and expand stars, recursively."""
    sources = []
    for source in block.sources:
        if isinstance(source, ast.SubquerySource):
            inner = qualify_block(build_block(source.select), lookup)
            sources.append(ast.SubquerySource(block_to_select(inner), source.alias))
        else:
            sources.append(source)
    scope: dict[str, list[str]] = {}
    for source in sources:
        binding = source.binding.lower()
        if binding in scope:
            raise PlanError(f"duplicate table binding {binding!r}")
        scope[binding] = source_output_columns(source, lookup)

    def qualify_expr(expr: ast.Expr) -> ast.Expr:
        return _rewrite(expr, lambda ref: _qualify_ref(ref, scope))

    items: list[ast.SelectItem] = []
    for item in block.items:
        if isinstance(item.expr, ast.Star):
            targets = (
                [item.expr.table.lower()] if item.expr.table else list(scope.keys())
            )
            for binding in targets:
                if binding not in scope:
                    raise UnknownObjectError(f"unknown binding {binding!r} in *")
                for column in scope[binding]:
                    items.append(
                        ast.SelectItem(ast.ColumnRef(binding, column), None)
                    )
        else:
            items.append(ast.SelectItem(qualify_expr(item.expr), item.alias))

    # ORDER BY may reference select-list aliases; leave those unqualified
    # (the planner resolves them against the output schema).
    alias_names = {
        item.alias.lower() for item in block.items if item.alias is not None
    }

    def qualify_order(expr: ast.Expr) -> ast.Expr:
        if (
            isinstance(expr, ast.ColumnRef)
            and expr.table is None
            and expr.column.lower() in alias_names
        ):
            return expr
        return qualify_expr(expr)

    return QueryBlock(
        items=items,
        sources=sources,
        conjuncts=[qualify_expr(c) for c in block.conjuncts],
        group_by=[qualify_expr(e) for e in block.group_by],
        having=qualify_expr(block.having) if block.having is not None else None,
        order_by=[
            ast.OrderItem(qualify_order(o.expr), o.descending)
            for o in block.order_by
        ],
        limit=block.limit,
        distinct=block.distinct,
    )


def _qualify_ref(ref: ast.ColumnRef, scope: dict[str, list[str]]) -> ast.ColumnRef:
    if ref.table is not None:
        binding = ref.table.lower()
        if binding not in scope:
            raise UnknownObjectError(f"unknown table binding {ref.table!r}")
        if ref.column.lower() not in scope[binding]:
            raise UnknownObjectError(f"no column {ref.column!r} in {ref.table}")
        return ast.ColumnRef(binding, ref.column.lower())
    column = ref.column.lower()
    owners = [b for b, cols in scope.items() if column in cols]
    if not owners:
        raise UnknownObjectError(f"unknown column {ref.column!r}")
    if len(owners) > 1:
        raise PlanError(f"ambiguous column {ref.column!r}")
    return ast.ColumnRef(owners[0], column)


def _rewrite(
    expr: ast.Expr, on_ref: Callable[[ast.ColumnRef], ast.Expr]
) -> ast.Expr:
    """Rebuild an expression, applying ``on_ref`` to every column ref."""
    if isinstance(expr, ast.ColumnRef):
        return on_ref(expr)
    if isinstance(expr, ast.BinaryOp):
        return ast.BinaryOp(
            expr.op, _rewrite(expr.left, on_ref), _rewrite(expr.right, on_ref)
        )
    if isinstance(expr, ast.UnaryOp):
        return ast.UnaryOp(expr.op, _rewrite(expr.operand, on_ref))
    if isinstance(expr, ast.IsNull):
        return ast.IsNull(_rewrite(expr.operand, on_ref), expr.negated)
    if isinstance(expr, ast.FuncCall):
        return ast.FuncCall(
            expr.name,
            tuple(_rewrite(a, on_ref) for a in expr.args),
            expr.star,
            expr.distinct,
        )
    if isinstance(expr, ast.InList):
        return ast.InList(
            _rewrite(expr.operand, on_ref),
            tuple(_rewrite(i, on_ref) for i in expr.items),
            expr.negated,
        )
    if isinstance(expr, ast.InSubquery):
        return ast.InSubquery(_rewrite(expr.operand, on_ref), expr.subquery, expr.negated)
    return expr


# ---------------------------------------------------------------------------
# Flattening (Fegaras–Maier rule N8)
# ---------------------------------------------------------------------------

_rename_counter = itertools.count(1)


def can_flatten(select: ast.Select) -> bool:
    """A derived table is mergeable when it is a plain conjunctive
    select-project-join block."""
    block = build_block(select)
    return (
        not block.group_by
        and block.having is None
        and not block.order_by
        and block.limit is None
        and not block.distinct
        and not block.is_aggregating
    )


def flatten_block(block: QueryBlock) -> QueryBlock:
    """Merge every mergeable FROM-subquery into ``block``.

    ``block`` must already be qualified (see :func:`qualify_block`).
    Non-mergeable subqueries (aggregating, LIMIT, DISTINCT) are kept and
    later materialized by the planner.
    """
    sources: list[ast.Source] = []
    conjuncts = list(block.conjuncts)
    mapping: dict[tuple[str, str], ast.Expr] = {}
    taken = {s.binding.lower() for s in block.sources}
    changed = False

    for source in block.sources:
        if not isinstance(source, ast.SubquerySource) or not can_flatten(
            source.select
        ):
            sources.append(source)
            continue
        changed = True
        inner = flatten_block(build_block(source.select))
        inner, renames = _rename_inner(inner, taken, source.alias.lower())
        taken.update(s.binding.lower() for s in inner.sources)
        alias = source.alias.lower()
        for i, item in enumerate(inner.items):
            mapping[(alias, output_name(item, i))] = item.expr
        sources.extend(inner.sources)
        conjuncts.extend(inner.conjuncts)

    if not changed:
        return block

    def substitute(ref: ast.ColumnRef) -> ast.Expr:
        key = (ref.table.lower() if ref.table else "", ref.column.lower())
        return mapping.get(key, ref)

    new_items = []
    for i, item in enumerate(block.items):
        new_expr = _rewrite(item.expr, substitute)
        alias = item.alias
        if alias is None and new_expr != item.expr:
            # Substitution must not change the statement's output names.
            alias = output_name(item, i)
        new_items.append(ast.SelectItem(new_expr, alias))
    return QueryBlock(
        items=new_items,
        sources=sources,
        conjuncts=[_rewrite(c, substitute) for c in conjuncts],
        group_by=[_rewrite(e, substitute) for e in block.group_by],
        having=(
            _rewrite(block.having, substitute)
            if block.having is not None
            else None
        ),
        order_by=[
            ast.OrderItem(_rewrite(o.expr, substitute), o.descending)
            for o in block.order_by
        ],
        limit=block.limit,
        distinct=block.distinct,
    )


def _rename_inner(
    inner: QueryBlock, taken: set[str], dropped_alias: str
) -> tuple[QueryBlock, dict[str, str]]:
    """Rename inner bindings that would collide with outer bindings."""
    renames: dict[str, str] = {}
    new_sources: list[ast.Source] = []
    for source in inner.sources:
        binding = source.binding.lower()
        if binding in taken and binding != dropped_alias:
            fresh = f"{binding}_u{next(_rename_counter)}"
            renames[binding] = fresh
        new_sources.append(source)
    if not renames:
        return inner, renames

    def rebind(ref: ast.ColumnRef) -> ast.Expr:
        binding = ref.table.lower() if ref.table else None
        if binding in renames:
            return ast.ColumnRef(renames[binding], ref.column)
        return ref

    renamed_sources: list[ast.Source] = []
    for source in new_sources:
        binding = source.binding.lower()
        fresh = renames.get(binding)
        if fresh is None:
            renamed_sources.append(source)
        elif isinstance(source, ast.TableSource):
            renamed_sources.append(ast.TableSource(source.name, fresh))
        else:
            renamed_sources.append(ast.SubquerySource(source.select, fresh))

    return (
        QueryBlock(
            items=[
                ast.SelectItem(_rewrite(i.expr, rebind), i.alias)
                for i in inner.items
            ],
            sources=renamed_sources,
            conjuncts=[_rewrite(c, rebind) for c in inner.conjuncts],
            group_by=list(inner.group_by),
            having=inner.having,
            order_by=list(inner.order_by),
            limit=inner.limit,
            distinct=inner.distinct,
        ),
        renames,
    )
