"""Prepared statements and the engine-level plan cache.

Parsing and planning are pure functions of (SQL text, catalog version,
optimizer profile), so their results can be reused: a
:class:`PreparedStatement` pins the parsed AST and lazily caches the
compiled plan, revalidating it against :attr:`Catalog.version
<repro.engine.catalog.Catalog.version>` and the active optimizer
profile before every run.  :class:`Database
<repro.engine.database.Database>` keeps an :class:`LruCache` of
prepared statements keyed by SQL text so repeated ``execute()`` calls
skip parse *and* plan entirely.

Counters (``db.plan_cache.hits`` / ``misses`` / ``evictions`` /
``invalidations``) feed the engine's :class:`MetricsRegistry
<repro.engine.observability.MetricsRegistry>`.
"""

from __future__ import annotations

import dataclasses
from typing import Sequence

from .errors import PlanError
from .sql import ast

#: Statement types that can be prepared (everything else — DDL,
#: transaction control — is re-dispatched per call).
PREPARABLE = (ast.Select, ast.Insert, ast.Update, ast.Delete)


def count_params(node: object) -> int:
    """Number of ``?`` parameter slots a statement consumes (one past
    the highest :class:`ast.Param` index found anywhere in the tree)."""
    highest = -1

    def walk(obj: object) -> None:
        nonlocal highest
        if isinstance(obj, ast.Param):
            if obj.index > highest:
                highest = obj.index
        elif isinstance(obj, (list, tuple)):
            for item in obj:
                walk(item)
        elif dataclasses.is_dataclass(obj) and not isinstance(obj, type):
            for field in dataclasses.fields(obj):
                walk(getattr(obj, field.name))

    walk(node)
    return highest + 1


class LruCache:
    """A bounded mapping with least-recently-used eviction.

    ``capacity == 0`` disables the cache (every ``get`` misses, ``put``
    is a no-op).  Hit/miss accounting stays with the caller — what a
    lookup *means* differs per layer — but evictions are counted here,
    under ``<prefix>.evictions`` when a metrics registry is supplied.
    """

    def __init__(self, capacity: int, metrics=None, prefix: str = "") -> None:
        self.capacity = capacity
        self._c_evictions = (
            metrics.counter(f"{prefix}.evictions")
            if metrics is not None
            else None
        )
        self._entries: dict = {}

    @property
    def enabled(self) -> bool:
        return self.capacity > 0

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: object) -> bool:
        return key in self._entries

    def get(self, key: object) -> object | None:
        entry = self._entries.get(key)
        if entry is None:
            return None
        # Python dicts preserve insertion order; re-inserting moves the
        # key to the most-recently-used end.
        del self._entries[key]
        self._entries[key] = entry
        return entry

    def put(self, key: object, value: object) -> None:
        if not self.enabled:
            return
        self._entries.pop(key, None)
        self._entries[key] = value
        while len(self._entries) > self.capacity:
            oldest = next(iter(self._entries))
            del self._entries[oldest]
            if self._c_evictions is not None:
                self._c_evictions.inc()

    def clear(self) -> int:
        """Drop every entry; returns how many were dropped."""
        count = len(self._entries)
        self._entries.clear()
        return count


class PreparedStatement:
    """A statement parsed once, planned lazily, executable many times.

    For SELECTs the physical plan is cached on the handle and reused as
    long as ``(catalog.version, optimizer profile, execution engine)``
    are unchanged; a mismatch triggers a re-plan (counted as
    ``db.plan_cache.invalidations``).  INSERTs precompile their value expressions and
    column positions the same way.  UPDATE/DELETE skip re-parsing but
    re-bind per call — their index selection inspects parameter values.
    """

    __slots__ = (
        "database",
        "stmt",
        "_sql",
        "plan",
        "insert_program",
        "catalog_version",
        "profile",
        "execution",
        "feedback_version",
    )

    def __init__(self, database, stmt: ast.Statement, sql: str | None = None):
        if not isinstance(stmt, PREPARABLE):
            raise PlanError(
                "only SELECT/INSERT/UPDATE/DELETE statements can be "
                f"prepared, not {type(stmt).__name__}"
            )
        self.database = database
        self.stmt = stmt
        self._sql = sql
        self.plan = None
        self.insert_program = None
        self.catalog_version: int | None = None
        self.profile = None
        #: Execution engine the cached plan was validated under; a
        #: cached plan never crosses engines without revalidation.
        self.execution: str | None = None
        #: Cardinality-feedback revision the cached plan was planned
        #: under; new observations that could change a plan choice bump
        #: the store's version and lazily re-plan here.
        self.feedback_version: int | None = None

    @property
    def sql(self) -> str:
        if self._sql is None:
            self._sql = self.stmt.sql()
        return self._sql

    @property
    def is_select(self) -> bool:
        return isinstance(self.stmt, ast.Select)

    def execute(self, params: Sequence[object] = ()):
        """Run the statement; returns a :class:`Result
        <repro.engine.database.Result>`."""
        return self.database._execute_prepared(self, params)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "planned" if self.plan is not None else "unplanned"
        return f"<PreparedStatement {state} {self.sql!r}>"
