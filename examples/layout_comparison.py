"""Compare every schema-mapping layout on the same tenant fleet.

Rebuilds the same small SaaS (Figure 4-style base table + two
extensions, a few dozen tenants) under each layout of Figure 4 and
reports the trade-offs the paper's Section 3 describes: physical table
counts (consolidation), meta-data budget, per-query page reads, and
whether extensibility is supported at all.

Run:  python examples/layout_comparison.py
"""

from repro import Extension, LogicalColumn, LogicalTable, MultiTenantDatabase
from repro.core.layouts import LAYOUTS
from repro.engine.database import Database
from repro.engine.values import DATE, INTEGER, varchar
from repro.experiments.report import render_table

TENANTS = 30


def build(layout: str) -> MultiTenantDatabase | None:
    mtd = MultiTenantDatabase(
        layout=layout, db=Database(memory_bytes=8 * 1024 * 1024)
    )
    mtd.define_table(
        LogicalTable(
            "account",
            (
                LogicalColumn("aid", INTEGER, indexed=True, not_null=True),
                LogicalColumn("name", varchar(50)),
                LogicalColumn("opened", DATE),
                LogicalColumn("balance", INTEGER),
            ),
        )
    )
    extensible = layout != "basic"
    if extensible:
        mtd.define_extension(
            Extension(
                "healthcare",
                "account",
                (
                    LogicalColumn("hospital", varchar(50)),
                    LogicalColumn("beds", INTEGER),
                ),
            )
        )
        mtd.define_extension(
            Extension(
                "automotive", "account", (LogicalColumn("dealers", INTEGER),)
            )
        )
    for tenant in range(1, TENANTS + 1):
        extensions: tuple = ()
        if extensible and tenant % 3 == 1:
            extensions = ("healthcare",)
        elif extensible and tenant % 3 == 2:
            extensions = ("automotive",)
        mtd.create_tenant(tenant, extensions=extensions)
        for aid in range(1, 9):
            values = {
                "aid": aid,
                "name": f"acct-{tenant}-{aid}",
                "opened": "2007-01-15",
                "balance": tenant * 100 + aid,
            }
            if "healthcare" in extensions:
                values.update(hospital=f"clinic-{aid}", beds=aid * 10)
            if "automotive" in extensions:
                values.update(dealers=aid)
            mtd.insert(tenant, "account", values)
    return mtd


def measure_point_query(mtd: MultiTenantDatabase) -> int:
    sql = "SELECT name, balance FROM account WHERE aid = ?"
    mtd.execute(4, sql, [5])  # warm
    before = mtd.db.pool_stats.snapshot()
    mtd.execute(4, sql, [5])
    return mtd.db.pool_stats.delta(before).logical_total


def main() -> None:
    rows = []
    for layout in LAYOUTS:
        mtd = build(layout)
        report = mtd.report()
        rows.append(
            (
                layout,
                "yes" if mtd.layout.supports_extensions else "no",
                report.physical_tables,
                report.physical_indexes,
                report.metadata_bytes // 1024,
                measure_point_query(mtd),
            )
        )
    print(
        render_table(
            f"Schema-mapping layouts, {TENANTS} tenants, 8 accounts each",
            [
                "layout",
                "extensible",
                "tables",
                "indexes",
                "meta-data KB",
                "reads/point-query",
            ],
            rows,
        )
    )
    print()
    print(
        "The Figure 2 / Section 3 trade-off in one table: Private maximizes\n"
        "isolation but its table count scales with tenants; Basic/Universal\n"
        "maximize consolidation but give up extensibility or typing; Chunk\n"
        "Folding spends a fixed meta-data budget on conventional tables for\n"
        "the hot base schema and shares generic Chunk Tables for the rest."
    )


if __name__ == "__main__":
    main()
