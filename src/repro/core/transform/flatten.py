"""Flattened-query generation for less-sophisticated optimizers.

Section 6.2, Test 1: MySQL's optimizer "was unable to unnest the nesting
introduced by our query transformation", so for such databases the
transformation layer "must directly generate the flattened queries" —
and, because the optimizer also follows the textual predicate order, the
order in which the flattener emits conjuncts changes the plan (the paper
measured a factor of 5 between orderings).

:func:`flatten_transformed` merges the reconstruction subqueries into a
single select-project-join block; :func:`order_predicates` rewrites the
WHERE conjunct order per the experiment's two orderings.
"""

from __future__ import annotations

import enum
from typing import Callable

from ...engine.plan.logical import (
    block_to_select,
    build_block,
    conjoin,
    flatten_block,
    qualify_block,
    split_conjuncts,
)
from ...engine.sql import ast

#: Meta-data column names (the gray columns of Figure 4).
META_COLUMNS = {"tenant", "tbl", "chunk", "col", "row", "alive"}


class PredicateOrder(enum.Enum):
    """Conjunct orderings studied in Test 1."""

    AS_GENERATED = "as-generated"
    #: All meta-data predicates precede the original query's predicates
    #: (the ordering that performed 5x *worse* on MySQL).
    METADATA_FIRST = "metadata-first"
    #: Original-query predicates first — mimicking DB2's evaluation plan.
    ORIGINAL_FIRST = "original-first"


def flatten_transformed(
    select: ast.Select, column_lookup: Callable[[str], list[str]]
) -> ast.Select:
    """Merge reconstruction subqueries into one flat SPJ block.

    ``column_lookup`` resolves *physical* table names (the engine
    catalog).  Non-mergeable subqueries (aggregating) are left nested.
    """
    block = qualify_block(build_block(select), column_lookup)
    return block_to_select(flatten_block(block))


def is_metadata_predicate(conjunct: ast.Expr) -> bool:
    """True when the conjunct only touches meta-data columns (tenant,
    tbl, chunk, col, row, alive) — reconstruction plumbing rather than
    the original query's logic."""
    verdict = True

    def walk(expr) -> None:
        nonlocal verdict
        if isinstance(expr, ast.ColumnRef):
            if expr.column.lower() not in META_COLUMNS:
                verdict = False
        elif isinstance(expr, ast.BinaryOp):
            walk(expr.left)
            walk(expr.right)
        elif isinstance(expr, (ast.UnaryOp, ast.IsNull)):
            walk(expr.operand)
        elif isinstance(expr, ast.FuncCall):
            for arg in expr.args:
                walk(arg)
        elif isinstance(expr, ast.InList):
            walk(expr.operand)
            for item in expr.items:
                walk(item)
        elif isinstance(expr, ast.InSubquery):
            walk(expr.operand)

    walk(conjunct)
    return verdict


def order_predicates(select: ast.Select, order: PredicateOrder) -> ast.Select:
    """Reorder the top-level WHERE conjuncts."""
    if order is PredicateOrder.AS_GENERATED or select.where is None:
        return select
    conjuncts = split_conjuncts(select.where)
    metadata = [c for c in conjuncts if is_metadata_predicate(c)]
    original = [c for c in conjuncts if not is_metadata_predicate(c)]
    if order is PredicateOrder.METADATA_FIRST:
        ordered = metadata + original
    else:
        ordered = original + metadata
    return ast.Select(
        items=select.items,
        sources=select.sources,
        where=conjoin(ordered),
        group_by=select.group_by,
        having=select.having,
        order_by=select.order_by,
        limit=select.limit,
        distinct=select.distinct,
    )
