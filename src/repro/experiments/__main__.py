"""Command-line experiment runner.

Regenerates the paper's tables and figures without pytest::

    python -m repro.experiments table2          # Table 2 + Figure 7
    python -m repro.experiments fig9 fig10      # chunk-width sweeps
    python -m repro.experiments all             # everything

Options scale the workloads (see --help).  The same harnesses back the
`benchmarks/` suite; outputs match `benchmarks/results/`.
"""

from __future__ import annotations

import argparse
import sys

from ..engine.explain import render_plan
from ..testbed.actions import ActionClass
from .chunkqueries import (
    ChunkQueryConfig,
    ChunkQueryExperiment,
    PAPER_WIDTHS,
    TENANT,
    q2_sql,
)
from .manytables import ManyTablesExperiment
from .report import render_series, render_table

SCALES = (3, 15, 30, 45, 60, 75, 90)


def run_table1(args) -> str:
    from ..testbed.variability import VariabilityConfig

    rows = []
    for variability in (0.0, 0.5, 0.65, 0.8, 1.0):
        config = VariabilityConfig(variability, 10_000)
        counts = config.tenants_per_instance()
        spread = (
            str(counts[0])
            if min(counts) == max(counts)
            else f"{min(counts)}-{max(counts)}"
        )
        rows.append((variability, config.instances, spread, config.total_tables))
    return render_table(
        "Table 1: Schema Variability and Data Distribution (10,000 tenants)",
        ["variability", "instances", "tenants/instance", "total tables"],
        rows,
    )


def run_table2(args) -> str:
    experiment = ManyTablesExperiment(
        tenants=args.tenants, sessions=40, actions=args.actions
    )
    sweep = experiment.run()
    header = ["metric"] + [f"v={r.variability}" for r in sweep]
    rows = [
        ["Total tables"] + [r.total_tables for r in sweep],
        ["Baseline compliance [%]"]
        + [round(r.baseline_compliance, 1) for r in sweep],
        ["Throughput [1/min]"]
        + [round(r.throughput_per_minute) for r in sweep],
    ]
    for action in ActionClass:
        if any(action in r.quantiles_ms for r in sweep):
            rows.append(
                [f"95% RT {action.value} [ms]"]
                + [round(r.quantiles_ms.get(action, 0.0), 1) for r in sweep]
            )
    rows.append(
        ["Bufferpool hit data [%]"]
        + [round(r.data_hit_pct, 2) for r in sweep]
    )
    rows.append(
        ["Bufferpool hit index [%]"]
        + [round(r.index_hit_pct, 2) for r in sweep]
    )
    return render_table(
        "Table 2 / Figure 7: Experimental Results (scaled)", header, rows
    )


class _Sweep:
    """Shared chunk-width sweep for fig9/fig10/fig11."""

    def __init__(self, args) -> None:
        config = ChunkQueryConfig(
            parents=args.parents, children_per_parent=args.children
        )
        self.experiments = {"conventional": ChunkQueryExperiment("private", config)}
        for width in PAPER_WIDTHS:
            self.experiments[f"chunk{width}"] = ChunkQueryExperiment(
                "chunk", config, width=width
            )

    def series(self, metric, *, cold=False):
        out = {}
        for label, experiment in self.experiments.items():
            points = []
            for scale in SCALES:
                m = experiment.measure(scale, cold=cold)
                points.append((scale, float(metric(m))))
            out[label] = points
        return out


def run_fig8(args) -> str:
    experiment = ChunkQueryExperiment(
        "chunk",
        ChunkQueryConfig(parents=args.parents, children_per_parent=args.children),
        width=6,
    )
    experiment.load()
    plan = experiment.mtd.db.plan(
        experiment.mtd.transform_sql(TENANT, q2_sql(3))
    )
    trace = experiment.trace(3)
    return (
        "Figure 8: Join plan for simple fragment query (Q2 scale 3, Chunk6)\n\n"
        + render_plan(plan)
        + "\n\nEXPLAIN ANALYZE (measured rows/opens/times):\n\n"
        + (trace.plan or "")
    )


def run_fig9(args) -> str:
    sweep = _Sweep(args)
    return render_series(
        "Figure 9: Response Times with Warm Cache (simulated ms)",
        "q2_scale",
        sweep.series(lambda m: m.warm_ms),
    )


def run_fig10(args) -> str:
    sweep = _Sweep(args)
    reads = render_series(
        "Figure 10: Number of logical page reads",
        "q2_scale",
        sweep.series(lambda m: m.logical_reads),
    )
    share = render_series(
        "Figure 10 (companion): share of reads issued by index accesses [%]",
        "q2_scale",
        sweep.series(lambda m: 100.0 * m.index_read_share),
    )
    return reads + "\n\n" + share


def run_fig11(args) -> str:
    from ..testbed.simtime import CostModel

    cost = CostModel()
    sweep = _Sweep(args)
    return render_series(
        "Figure 11: Response Times with Cold Cache (simulated ms)",
        "q2_scale",
        sweep.series(
            lambda m: m.warm_ms + cost.physical_read_ms * m.physical_reads,
            cold=True,
        ),
    )


def run_grouping(args) -> str:
    config = ChunkQueryConfig(
        parents=args.parents, children_per_parent=args.children
    )
    rows = []
    conventional = ChunkQueryExperiment("private", config).measure_grouping()
    rows.append(("conventional", round(conventional, 2), 1.0))
    for width in PAPER_WIDTHS:
        ms = ChunkQueryExperiment(
            "chunk", config, width=width
        ).measure_grouping()
        rows.append((f"chunk{width}", round(ms, 2), round(ms / conventional, 1)))
    return render_table(
        "Additional Tests: grouping query by layout",
        ["layout", "sim ms", "x conventional"],
        rows,
    )


COMMANDS = {
    "table1": run_table1,
    "table2": run_table2,
    "fig8": run_fig8,
    "fig9": run_fig9,
    "fig10": run_fig10,
    "fig11": run_fig11,
    "grouping": run_grouping,
}


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument(
        "what",
        nargs="+",
        choices=sorted(COMMANDS) + ["all"],
        help="which artifacts to regenerate",
    )
    parser.add_argument("--tenants", type=int, default=100,
                        help="Experiment 1 tenant count (default 100)")
    parser.add_argument("--actions", type=int, default=600,
                        help="Experiment 1 workload size (default 600)")
    parser.add_argument("--parents", type=int, default=60,
                        help="Experiment 2 parent rows (default 60)")
    parser.add_argument("--children", type=int, default=6,
                        help="Experiment 2 children per parent (default 6)")
    args = parser.parse_args(argv)

    names = sorted(COMMANDS) if "all" in args.what else args.what
    for name in names:
        print(COMMANDS[name](args))
        print()
    return 0


if __name__ == "__main__":
    sys.exit(main())
