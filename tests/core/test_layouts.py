"""Cross-layout behaviour: the Figure 4 running example must give the
same answers under every schema-mapping technique."""

import datetime

import pytest

from repro import LogicalColumn, LogicalTable, MultiTenantDatabase
from repro.core.layouts import LAYOUTS, make_layout
from repro.engine.errors import PlanError, UnknownObjectError
from repro.engine.values import INTEGER, varchar

from .conftest import ALL_LAYOUTS, build_running_example


class TestRunningExample:
    def test_extension_column_query(self, any_layout_mtd):
        result = any_layout_mtd.execute(
            17, "SELECT beds FROM account WHERE hospital = 'State'"
        )
        assert result.rows == [(1042,)]

    def test_base_column_query(self, any_layout_mtd):
        result = any_layout_mtd.execute(
            35, "SELECT name FROM account ORDER BY aid"
        )
        assert result.rows == [("Ball",)]

    def test_tenant_isolation(self, any_layout_mtd):
        """Tenant 35 must never see tenant 17's accounts."""
        result = any_layout_mtd.execute(35, "SELECT COUNT(*) FROM account")
        assert result.rows == [(1,)]

    def test_star_expands_to_tenant_view(self, any_layout_mtd):
        result = any_layout_mtd.execute(42, "SELECT * FROM account")
        assert result.columns == ["aid", "name", "opened", "dealers"]
        assert result.rows == [
            (1, "Big", datetime.date(2007, 9, 10), 65)
        ]

    def test_extension_column_invisible_to_other_tenant(self, any_layout_mtd):
        with pytest.raises(UnknownObjectError):
            any_layout_mtd.execute(35, "SELECT dealers FROM account")

    def test_count_star(self, any_layout_mtd):
        assert any_layout_mtd.execute(17, "SELECT COUNT(*) FROM account").rows == [
            (2,)
        ]

    def test_date_roundtrip(self, any_layout_mtd):
        result = any_layout_mtd.execute(
            17, "SELECT opened FROM account WHERE aid = 1"
        )
        assert result.rows == [(datetime.date(2001, 2, 3),)]

    def test_aggregation_over_extension_column(self, any_layout_mtd):
        result = any_layout_mtd.execute(17, "SELECT SUM(beds) FROM account")
        assert result.rows == [(1177,)]

    def test_order_by_extension_column(self, any_layout_mtd):
        result = any_layout_mtd.execute(
            17, "SELECT name FROM account ORDER BY beds DESC"
        )
        assert [r[0] for r in result.rows] == ["Gump", "Acme"]

    def test_null_in_unset_column(self, any_layout_mtd):
        any_layout_mtd.insert(17, "account", {"aid": 3, "name": "NoHosp"})
        result = any_layout_mtd.execute(
            17, "SELECT beds FROM account WHERE aid = 3"
        )
        assert result.rows == [(None,)]

    def test_insert_via_sql(self, any_layout_mtd):
        any_layout_mtd.execute(
            35,
            "INSERT INTO account (aid, name, opened) VALUES (?, ?, ?)",
            [9, "New", "2008-06-09"],
        )
        result = any_layout_mtd.execute(
            35, "SELECT name FROM account WHERE aid = 9"
        )
        assert result.rows == [("New",)]

    def test_update_extension_column(self, any_layout_mtd):
        count = any_layout_mtd.execute(
            17, "UPDATE account SET beds = 200 WHERE hospital = 'St. Mary'"
        ).rowcount
        assert count == 1
        assert any_layout_mtd.execute(
            17, "SELECT beds FROM account WHERE aid = 1"
        ).rows == [(200,)]

    def test_update_with_cross_column_expression(self, any_layout_mtd):
        """SET expression mixing base and extension columns (only the
        buffered DML mode can do this for chunked layouts)."""
        any_layout_mtd.execute(
            17, "UPDATE account SET beds = beds + aid WHERE aid = 2"
        )
        assert any_layout_mtd.execute(
            17, "SELECT beds FROM account WHERE aid = 2"
        ).rows == [(1044,)]

    def test_delete_by_predicate(self, any_layout_mtd):
        count = any_layout_mtd.execute(
            17, "DELETE FROM account WHERE beds > 1000"
        ).rowcount
        assert count == 1
        assert any_layout_mtd.execute(17, "SELECT COUNT(*) FROM account").rows == [
            (1,)
        ]

    def test_self_join(self, any_layout_mtd):
        result = any_layout_mtd.execute(
            17,
            "SELECT a.name, b.name FROM account a, account b "
            "WHERE a.aid = 1 AND b.aid = 2",
        )
        assert result.rows == [("Acme", "Gump")]

    def test_grant_extension_online(self, any_layout_mtd):
        any_layout_mtd.grant_extension(35, "automotive")
        any_layout_mtd.insert(
            35, "account", {"aid": 2, "name": "Car", "dealers": 7}
        )
        result = any_layout_mtd.execute(
            35, "SELECT dealers FROM account WHERE aid = 2"
        )
        assert result.rows == [(7,)]

    def test_drop_tenant_purges_data(self, any_layout_mtd):
        any_layout_mtd.drop_tenant(17)
        with pytest.raises(UnknownObjectError):
            any_layout_mtd.execute(17, "SELECT COUNT(*) FROM account")
        # Other tenants unaffected.
        assert any_layout_mtd.execute(35, "SELECT COUNT(*) FROM account").rows == [
            (1,)
        ]


class TestConsolidationProperties:
    """Physical table counts: the core trade-off of Figure 2 / Section 3."""

    def layout_table_count(self, layout):
        mtd = build_running_example(layout)
        return mtd.db.catalog.table_count

    def test_private_grows_with_tenants(self):
        assert self.layout_table_count("private") == 3  # one per tenant

    def test_generic_layouts_fixed_table_count(self):
        pivot = self.layout_table_count("pivot")
        universal = self.layout_table_count("universal")
        mtd_u = build_running_example("universal")
        assert universal == 1
        # Pivot: one table per used type family (and index variant).
        assert pivot <= 4

    def test_extension_layout_grows_with_extensions(self):
        assert self.layout_table_count("extension") == 3  # base + 2 ext

    def test_chunk_folding_mixes_conventional_and_generic(self):
        mtd = build_running_example("chunk_folding")
        names = {t.name for t in mtd.db.catalog.tables()}
        assert "account_cf" in names
        assert any(n.startswith("chunk_") for n in names)

    def test_private_has_no_metadata_columns(self):
        mtd = build_running_example("private")
        table = mtd.db.catalog.table("account_t17")
        names = [c.lname for c in table.columns]
        assert "tenant" not in names and "row" not in names

    def test_universal_single_table_many_nulls(self):
        mtd = build_running_example("universal")
        table = mtd.db.catalog.table("universal")
        assert table.row_count == 4  # all tenants' rows in one table


class TestLayoutRegistry:
    def test_all_layouts_registered(self):
        assert set(LAYOUTS) == {
            "basic",
            "private",
            "extension",
            "universal",
            "pivot",
            "chunk",
            "chunk_folding",
        }

    def test_unknown_layout_raises(self):
        with pytest.raises(ValueError):
            make_layout("nope", None, None)


class TestBasicLayout:
    def test_no_extensions_allowed(self):
        mtd = MultiTenantDatabase(layout="basic")
        mtd.define_table(
            LogicalTable("t", (LogicalColumn("a", INTEGER),))
        )
        from repro import Extension

        with pytest.raises(PlanError):
            mtd.define_extension(
                Extension("x", "t", (LogicalColumn("b", INTEGER),))
            )

    def test_shares_one_table(self):
        mtd = MultiTenantDatabase(layout="basic")
        mtd.define_table(
            LogicalTable(
                "t",
                (LogicalColumn("a", INTEGER), LogicalColumn("b", varchar(10))),
            )
        )
        for tenant in range(1, 6):
            mtd.create_tenant(tenant)
            mtd.insert(tenant, "t", {"a": tenant, "b": f"v{tenant}"})
        assert mtd.db.catalog.table_count == 1
        assert mtd.execute(3, "SELECT b FROM t").rows == [("v3",)]


class TestUniversalWidth:
    def test_overflow_rejected(self):
        mtd = MultiTenantDatabase(layout="universal", width=2)
        with pytest.raises(PlanError):
            mtd.define_table(
                LogicalTable(
                    "wide",
                    tuple(
                        LogicalColumn(f"c{i}", INTEGER) for i in range(3)
                    ),
                )
            )


class TestChunkWidthSweep:
    """The same data must survive any chunk width (Pivot-like 1 up to
    Universal-like full width)."""

    @pytest.mark.parametrize("width", [1, 2, 3, 5, 10])
    def test_roundtrip_at_width(self, width):
        mtd = build_running_example("chunk", width=width)
        assert mtd.execute(
            17, "SELECT beds FROM account WHERE hospital = 'State'"
        ).rows == [(1042,)]
        assert mtd.execute(17, "SELECT COUNT(*) FROM account").rows == [(2,)]

    def test_unfolded_vertical_partitioning(self):
        mtd = build_running_example("chunk", width=2, folded=False)
        names = {t.name for t in mtd.db.catalog.tables()}
        assert any(n.startswith("vp_account_") for n in names)
        assert mtd.execute(
            17, "SELECT beds FROM account WHERE hospital = 'State'"
        ).rows == [(1042,)]
