"""Single-session transactions with a logical undo log.

The testbed's transaction strategy (Section 4.2) assumes "the maximum
granularity for a transaction is the duration of a single user
request"; the engine supports exactly that: one open transaction per
database, BEGIN / COMMIT / ROLLBACK, undo via logical inverse
operations.  DDL is not transactional (as in many of the paper's
databases, which "cannot perform DDL operations while they are
on-line") — it commits any open transaction first.

RID stability: undoing a delete re-inserts the row at a fresh RID, so
the rollback replays entries newest-first and threads a remap table
through, keeping earlier entries pointed at the row's current location.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from .errors import EngineError
from .heap import RowId

if TYPE_CHECKING:  # pragma: no cover
    from .catalog import Table


@dataclass
class _InsertEntry:
    table: "Table"
    rid: RowId


@dataclass
class _DeleteEntry:
    table: "Table"
    rid: RowId
    row: tuple


@dataclass
class _UpdateEntry:
    table: "Table"
    old_rid: RowId
    old_row: tuple
    new_rid: RowId


class TransactionManager:
    """Undo-log bookkeeping for one database.

    With a :class:`~repro.engine.durability.manager.DurabilityManager`
    attached, every recorded change additionally emits a logical redo
    record to the WAL.  Transaction ids are allocated lazily on the
    first logged write (read-only transactions never touch the log);
    statements outside an explicit BEGIN form implicit autocommit
    transactions whose commit terminal is emitted by
    :meth:`end_statement`.
    """

    def __init__(self, *, metrics=None, durability=None) -> None:
        self._log: list[object] | None = None
        self.committed = 0
        self.rolled_back = 0
        self._metrics = metrics
        self._durability = durability
        #: WAL transaction id of the current (explicit or implicit)
        #: transaction; None until it logs its first write.
        self._txid: int | None = None
        #: Optional dynamic sanitizer, notified at every transaction
        #: terminal / statement boundary (the write-ahead rule is
        #: checked per boundary, not per mutation, because the engine
        #: mutates the heap before recording the redo entry).
        self.sanitizer = None

    @property
    def active(self) -> bool:
        return self._log is not None

    # -- lifecycle ----------------------------------------------------------

    def begin(self) -> None:
        if self.active:
            raise EngineError("a transaction is already open")
        self._log = []
        if self._metrics is not None:
            self._metrics.counter("txn.begun").inc()

    def commit(self) -> None:
        if not self.active:
            raise EngineError("no open transaction to commit")
        self._log = None
        self._emit_commit()
        self.committed += 1
        if self._metrics is not None:
            self._metrics.counter("txn.committed").inc()
        if self.sanitizer is not None:
            self.sanitizer.on_statement_end()

    def commit_if_active(self) -> None:
        if self.active:
            self.commit()

    def rollback(self) -> None:
        if self._log is None:
            raise EngineError("no open transaction to roll back")
        log, self._log = self._log, None
        if self._metrics is not None:
            self._metrics.counter("txn.rolled_back").inc()
            self._metrics.histogram("txn.undo_entries").observe(len(log))
        remap: dict[tuple[int, RowId], RowId] = {}

        def resolve(table: "Table", rid: RowId) -> RowId:
            return remap.get((id(table), rid), rid)

        # Each inverse operation is WAL-logged as a compensation record
        # under the same transaction id, followed by a rollback
        # terminal: recovery replays the forward records *and* the
        # compensation, netting out to nothing while keeping the RID
        # remap coherent (the CLR idea from ARIES).
        for entry in reversed(log):
            if isinstance(entry, _InsertEntry):
                rid = resolve(entry.table, entry.rid)
                row = entry.table.delete_row(rid)
                self._emit(
                    "del",
                    entry.table,
                    rid=(rid.page_id, rid.slot),
                    row=row,
                )
            elif isinstance(entry, _DeleteEntry):
                new_rid = entry.table.insert_row(entry.row)
                remap[(id(entry.table), entry.rid)] = new_rid
                self._emit(
                    "ins",
                    entry.table,
                    rid=(new_rid.page_id, new_rid.slot),
                    row=entry.row,
                )
            elif isinstance(entry, _UpdateEntry):
                current = resolve(entry.table, entry.new_rid)
                restored = entry.table.update_row(current, entry.old_row)
                if restored != entry.old_rid:
                    remap[(id(entry.table), entry.old_rid)] = restored
                self._emit(
                    "upd",
                    entry.table,
                    rid=(current.page_id, current.slot),
                    row=None,
                    new_rid=(restored.page_id, restored.slot),
                    new_row=entry.old_row,
                )
        self._emit_rollback()
        self.rolled_back += 1
        if self.sanitizer is not None:
            self.sanitizer.on_statement_end()

    def end_statement(self) -> None:
        """Statement boundary: commit the implicit autocommit
        transaction, if one logged anything."""
        if self.active:
            return  # inside an explicit transaction: nothing ends yet
        self._emit_commit()
        if self.sanitizer is not None:
            self.sanitizer.on_statement_end()

    # -- recording ---------------------------------------------------------
    #
    # Undo entries are only kept inside an explicit transaction; the WAL
    # redo record is emitted unconditionally (autocommit statements must
    # be durable too).

    def record_insert(self, table: "Table", rid: RowId, row: tuple) -> None:
        if self._log is not None:
            self._log.append(_InsertEntry(table, rid))
        self._emit("ins", table, rid=(rid.page_id, rid.slot), row=row)

    def record_delete(self, table: "Table", rid: RowId, row: tuple) -> None:
        if self._log is not None:
            self._log.append(_DeleteEntry(table, rid, row))
        self._emit("del", table, rid=(rid.page_id, rid.slot), row=row)

    def record_update(
        self,
        table: "Table",
        old_rid: RowId,
        old_row: tuple,
        new_rid: RowId,
        new_row: tuple,
    ) -> None:
        if self._log is not None:
            self._log.append(_UpdateEntry(table, old_rid, old_row, new_rid))
        self._emit(
            "upd",
            table,
            rid=(old_rid.page_id, old_rid.slot),
            row=old_row,
            new_rid=(new_rid.page_id, new_rid.slot),
            new_row=new_row,
        )

    # -- WAL plumbing ------------------------------------------------------

    def _emit(self, kind: str, table: "Table", **fields) -> None:
        durability = self._durability
        if durability is None or durability.replaying:
            return
        if self._txid is None:
            self._txid = durability.allocate_txid()
        durability.log(
            {"t": kind, "tx": self._txid, "table": table.name, **fields}
        )

    def _emit_commit(self) -> None:
        if self._txid is not None:
            self._durability.log_commit(self._txid)
            self._txid = None

    def _emit_rollback(self) -> None:
        if self._txid is not None:
            self._durability.log_rollback(self._txid)
            self._txid = None

    # -- checkpoint support ------------------------------------------------

    def serialize_active(self) -> dict | None:
        """The open transaction's id and undo log in a picklable form
        (fuzzy checkpoints snapshot mid-transaction state)."""
        if self._log is None:
            return None
        entries: list[tuple] = []
        for entry in self._log:
            if isinstance(entry, _InsertEntry):
                entries.append(
                    ("ins", entry.table.name,
                     (entry.rid.page_id, entry.rid.slot))
                )
            elif isinstance(entry, _DeleteEntry):
                entries.append(
                    ("del", entry.table.name,
                     (entry.rid.page_id, entry.rid.slot), entry.row)
                )
            elif isinstance(entry, _UpdateEntry):
                entries.append(
                    ("upd", entry.table.name,
                     (entry.old_rid.page_id, entry.old_rid.slot),
                     entry.old_row,
                     (entry.new_rid.page_id, entry.new_rid.slot))
                )
        return {"tx": self._txid, "entries": entries}
