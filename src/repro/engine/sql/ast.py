"""Abstract syntax trees for the SQL subset.

The same expression nodes are reused by the logical-query layer in
:mod:`repro.core.transform`, which builds ASTs programmatically during
query transformation and renders them back to SQL text (so that the
generated queries in tests/benchmarks are real SQL, exactly as the
paper's query-transformation layer emits SQL to DB2/MySQL).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

# --------------------------------------------------------------------------
# Expressions
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class Literal:
    value: object

    def sql(self) -> str:
        if self.value is None:
            return "NULL"
        if isinstance(self.value, bool):
            return "TRUE" if self.value else "FALSE"
        if isinstance(self.value, (int, float)):
            return repr(self.value)
        text = str(self.value).replace("'", "''")
        return f"'{text}'"


@dataclass(frozen=True)
class Param:
    """A positional ``?`` parameter."""

    index: int  # 0-based position among the statement's parameters

    def sql(self) -> str:
        return "?"


@dataclass(frozen=True)
class ColumnRef:
    table: str | None  # alias or table name, None when unqualified
    column: str

    def sql(self) -> str:
        if self.table:
            return f"{self.table}.{self.column}"
        return self.column


@dataclass(frozen=True)
class BinaryOp:
    op: str  # AND OR = <> < <= > >= + - * / ||
    left: "Expr"
    right: "Expr"

    def sql(self) -> str:
        op = self.op.upper()
        if op in ("AND", "OR"):
            # Render AND/OR chains n-ary: reconstruction queries build
            # conjunctions with hundreds of terms, and nested parens
            # would make the (recursive-descent) parser's stack depth
            # proportional to the term count.
            parts: list[str] = []

            def collect(expr: "Expr") -> None:
                if isinstance(expr, BinaryOp) and expr.op.upper() == op:
                    collect(expr.left)
                    collect(expr.right)
                else:
                    parts.append(expr.sql())

            collect(self)
            return "(" + f" {op} ".join(parts) + ")"
        return f"({self.left.sql()} {self.op} {self.right.sql()})"


@dataclass(frozen=True)
class UnaryOp:
    op: str  # NOT, -
    operand: "Expr"

    def sql(self) -> str:
        if self.op.upper() == "NOT":
            return f"(NOT {self.operand.sql()})"
        return f"({self.op}{self.operand.sql()})"


@dataclass(frozen=True)
class IsNull:
    operand: "Expr"
    negated: bool = False

    def sql(self) -> str:
        tail = "IS NOT NULL" if self.negated else "IS NULL"
        return f"({self.operand.sql()} {tail})"


@dataclass(frozen=True)
class FuncCall:
    """Aggregate or scalar function call.  ``COUNT(*)`` has star=True."""

    name: str
    args: tuple["Expr", ...] = ()
    star: bool = False
    distinct: bool = False

    def sql(self) -> str:
        if self.star:
            return f"{self.name}(*)"
        inner = ", ".join(a.sql() for a in self.args)
        if self.distinct:
            inner = f"DISTINCT {inner}"
        return f"{self.name}({inner})"

    @property
    def is_aggregate(self) -> bool:
        return self.name.upper() in {"COUNT", "SUM", "AVG", "MIN", "MAX"}


@dataclass(frozen=True)
class InList:
    operand: "Expr"
    items: tuple["Expr", ...]
    negated: bool = False

    def sql(self) -> str:
        inner = ", ".join(i.sql() for i in self.items)
        op = "NOT IN" if self.negated else "IN"
        return f"({self.operand.sql()} {op} ({inner}))"


@dataclass(frozen=True)
class InSubquery:
    operand: "Expr"
    subquery: "Select"
    negated: bool = False

    def sql(self) -> str:
        op = "NOT IN" if self.negated else "IN"
        return f"({self.operand.sql()} {op} ({self.subquery.sql()}))"


Expr = Union[
    Literal, Param, ColumnRef, BinaryOp, UnaryOp, IsNull, FuncCall, InList, InSubquery
]


# --------------------------------------------------------------------------
# FROM sources
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class TableSource:
    name: str
    alias: str | None = None

    @property
    def binding(self) -> str:
        return self.alias or self.name

    def sql(self) -> str:
        if self.alias:
            return f"{self.name} AS {self.alias}"
        return self.name


@dataclass(frozen=True)
class SubquerySource:
    """A nested FROM subquery — the construct the paper's transformation
    emits (Section 6.1) and that simple optimizers fail to unnest."""

    select: "Select"
    alias: str

    @property
    def binding(self) -> str:
        return self.alias

    def sql(self) -> str:
        return f"({self.select.sql()}) AS {self.alias}"


Source = Union[TableSource, SubquerySource]


# --------------------------------------------------------------------------
# Statements
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class Star:
    """``*`` or ``alias.*`` in a select list."""

    table: str | None = None

    def sql(self) -> str:
        return f"{self.table}.*" if self.table else "*"


@dataclass(frozen=True)
class SelectItem:
    expr: Expr | Star
    alias: str | None = None

    def sql(self) -> str:
        text = self.expr.sql()
        if self.alias:
            text += f" AS {self.alias}"
        return text


@dataclass(frozen=True)
class OrderItem:
    expr: Expr
    descending: bool = False

    def sql(self) -> str:
        return self.expr.sql() + (" DESC" if self.descending else "")


@dataclass(frozen=True)
class TenantClause:
    """The MTSQL tenant-scope clause: ``FOR TENANTS IN (t1, ...)`` or
    ``FOR ALL TENANTS``.

    A SELECT carrying this clause is a *cross-tenant* statement: it is
    evaluated once over the union of the named tenants' data instead of
    inside one tenant's scope, with the tenant dimension addressable in
    the query via ``TENANT_ID()``.  ``all_tenants`` defers resolution of
    the concrete id set to execution time (every tenant then present).
    """

    all_tenants: bool = False
    ids: tuple[int, ...] = ()

    def sql(self) -> str:
        if self.all_tenants:
            return "FOR ALL TENANTS"
        return "FOR TENANTS IN (" + ", ".join(str(i) for i in self.ids) + ")"


@dataclass(frozen=True)
class Select:
    items: tuple[SelectItem, ...]
    sources: tuple[Source, ...]
    where: Expr | None = None
    group_by: tuple[Expr, ...] = ()
    having: Expr | None = None
    order_by: tuple[OrderItem, ...] = ()
    limit: int | None = None
    distinct: bool = False
    #: MTSQL tenant-scope clause; None = ordinary single-tenant SELECT.
    tenants: TenantClause | None = None

    def sql(self) -> str:
        head = "SELECT DISTINCT" if self.distinct else "SELECT"
        parts = [f"{head} " + ", ".join(i.sql() for i in self.items)]
        if self.sources:
            parts.append("FROM " + ", ".join(s.sql() for s in self.sources))
        if self.where is not None:
            parts.append("WHERE " + self.where.sql())
        if self.group_by:
            parts.append("GROUP BY " + ", ".join(e.sql() for e in self.group_by))
        if self.having is not None:
            parts.append("HAVING " + self.having.sql())
        if self.order_by:
            parts.append("ORDER BY " + ", ".join(o.sql() for o in self.order_by))
        if self.limit is not None:
            parts.append(f"LIMIT {self.limit}")
        if self.tenants is not None:
            parts.append(self.tenants.sql())
        return " ".join(parts)


@dataclass(frozen=True)
class Insert:
    table: str
    columns: tuple[str, ...]  # empty = all columns in table order
    rows: tuple[tuple[Expr, ...], ...]

    def sql(self) -> str:
        cols = f" ({', '.join(self.columns)})" if self.columns else ""
        rows = ", ".join(
            "(" + ", ".join(e.sql() for e in row) + ")" for row in self.rows
        )
        return f"INSERT INTO {self.table}{cols} VALUES {rows}"


@dataclass(frozen=True)
class Update:
    table: str
    assignments: tuple[tuple[str, Expr], ...]
    where: Expr | None = None

    def sql(self) -> str:
        sets = ", ".join(f"{c} = {e.sql()}" for c, e in self.assignments)
        text = f"UPDATE {self.table} SET {sets}"
        if self.where is not None:
            text += " WHERE " + self.where.sql()
        return text


@dataclass(frozen=True)
class Delete:
    table: str
    where: Expr | None = None

    def sql(self) -> str:
        text = f"DELETE FROM {self.table}"
        if self.where is not None:
            text += " WHERE " + self.where.sql()
        return text


@dataclass(frozen=True)
class ColumnDef:
    name: str
    type_text: str
    not_null: bool = False

    def sql(self) -> str:
        tail = " NOT NULL" if self.not_null else ""
        return f"{self.name} {self.type_text}{tail}"


@dataclass(frozen=True)
class CreateTable:
    table: str
    columns: tuple[ColumnDef, ...]
    #: Storage format from ``USING <format>`` (None = engine default, heap).
    storage: str | None = None

    def sql(self) -> str:
        text = (
            f"CREATE TABLE {self.table} ("
            + ", ".join(c.sql() for c in self.columns)
            + ")"
        )
        if self.storage is not None:
            text += f" USING {self.storage}"
        return text


@dataclass(frozen=True)
class CreateIndex:
    index: str
    table: str
    columns: tuple[str, ...]
    unique: bool = False

    def sql(self) -> str:
        head = "CREATE UNIQUE INDEX" if self.unique else "CREATE INDEX"
        return f"{head} {self.index} ON {self.table} ({', '.join(self.columns)})"


@dataclass(frozen=True)
class DropTable:
    table: str

    def sql(self) -> str:
        return f"DROP TABLE {self.table}"


@dataclass(frozen=True)
class DropIndex:
    index: str
    table: str

    def sql(self) -> str:
        return f"DROP INDEX {self.index} ON {self.table}"


Statement = Union[
    Select,
    Insert,
    Update,
    Delete,
    CreateTable,
    CreateIndex,
    DropTable,
    DropIndex,
]
