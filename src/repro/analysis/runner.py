"""Drives all three passes over the Figure 5 CRM testbed.

For every requested layout × Table 1 variability level, the runner
builds a multi-tenant database over the CRM schema (every instance's
ten tables, extensions on instance 0), populates a few rows per tenant,
and then

1. checks the layout invariants over the data at rest,
2. walks the physical statements the transformers emit for the logical
   corpus — both the directly-executed shape (literal tenant guards)
   and the shape-shared cached shape (hidden parameter guards) — and
   hands each to the isolation verifier,
3. replays DML and administrative operations (grant, migrate, drop)
   through a recorder wrapped around the engine, verifying every
   statement that actually reaches it,
4. re-checks the invariants after the mutations of step 3.

Findings are counted into the engine's metrics registry under
``analysis.*``.  ``python -m repro.analysis`` is a thin CLI over
:func:`run_analysis`.
"""

from __future__ import annotations

import contextlib
import shutil
import tempfile
from collections.abc import Callable, Iterator
from dataclasses import dataclass
from typing import Any

from ..core.api import MultiTenantDatabase
from ..engine.database import Database
from ..core.transform.query import TenantParamAllocator
from ..engine.sql import ast
from ..engine.sql.parser import parse_statement
from ..engine.statement_cache import count_params
from ..testbed.crm import crm_extensions, crm_tables, instance_table_name
from ..testbed.variability import VariabilityConfig, distribute_tenants
from . import invariants
from ..core.transform.crosstenant import CrossTenantTransformer
from .corpus import (
    cross_tenant_corpus,
    dml_corpus,
    extension_corpus,
    select_corpus,
)
from .findings import AnalysisReport
from .isolation import GuardContext, IsolationVerifier
from .mutation import apply_mutation

ALL_LAYOUTS = (
    "private",
    "basic",
    "extension",
    "universal",
    "pivot",
    "chunk",
    "chunk_folding",
)

#: Table 1's schema-variability levels (experiments/manytables.py).
PAPER_VARIABILITIES = (0.0, 0.5, 0.65, 0.8, 1.0)

#: Layouts that cannot express tenant-specific extensions.
NO_EXTENSIONS = ("basic",)


@dataclass
class AnalysisConfig:
    """One analysis run's scope."""

    layouts: tuple[str, ...] = ALL_LAYOUTS
    variabilities: tuple[float, ...] = PAPER_VARIABILITIES
    tenants: int = 4
    rows_per_table: int = 2
    #: Tables per instance to populate and query (all ten are defined
    #: and invariant-checked; the statement corpus covers this many).
    corpus_tables: int = 3
    width: int = 6
    #: Optional seeded defect (see :mod:`repro.analysis.mutation`).
    mutate: str | None = None
    #: Exercise administrative paths (grant / migrate / drop) too.
    admin_ops: bool = True
    #: Build each testbed on disk, abandon it mid-flight (simulated
    #: crash), recover, and run every pass against the *recovered*
    #: database — proving the invariants and isolation guarantees
    #: survive the durability path, not just a live process.
    crash_recover: bool = False


@contextlib.contextmanager
def record_statements(db: Any) -> Iterator[list[ast.Statement]]:
    """Capture every statement reaching the engine while active."""
    recorded: list[ast.Statement] = []
    original_ast, original_text = db.execute_ast, db.execute

    def rec_ast(stmt: ast.Statement, params: Any = ()) -> Any:
        recorded.append(stmt)
        return original_ast(stmt, params)

    def rec_text(sql: str, params: Any = ()) -> Any:
        with contextlib.suppress(Exception):
            recorded.append(parse_statement(sql))
        return original_text(sql, params)

    db.execute_ast, db.execute = rec_ast, rec_text
    try:
        yield recorded
    finally:
        db.execute_ast, db.execute = original_ast, original_text


def build_testbed(
    layout: str,
    config: AnalysisConfig,
    variability: float,
    *,
    db_path: str | None = None,
) -> MultiTenantDatabase:
    """A populated CRM multi-tenant database for one configuration."""
    vconfig = VariabilityConfig(variability=variability, tenants=config.tenants)
    options = {}
    if layout in ("chunk", "chunk_folding"):
        options["width"] = config.width
    db = Database(path=db_path) if db_path is not None else None
    mtd = MultiTenantDatabase(layout=layout, db=db, **options)
    for instance in range(vconfig.instances):
        for table in crm_tables(instance):
            mtd.define_table(table)
    extensions_enabled = layout not in NO_EXTENSIONS
    if extensions_enabled:
        for extension in crm_extensions(0):
            mtd.define_extension(extension)
    grants = (("healthcare",), ("automotive",), ("gdpr",), ())
    assignment = distribute_tenants(vconfig)
    for index, (tenant_id, instance) in enumerate(sorted(assignment.items())):
        extensions = (
            grants[index % len(grants)]
            if extensions_enabled and instance == 0
            else ()
        )
        mtd.create_tenant(tenant_id, extensions)
        _populate(mtd, tenant_id, instance, config)
    #: tenant -> CRM instance, consumed by :func:`analyze_testbed`.
    mtd.analysis_instances = dict(assignment)
    return mtd


def _populate(
    mtd: MultiTenantDatabase,
    tenant_id: int,
    instance: int,
    config: AnalysisConfig,
) -> None:
    bases = ["account", "contact", "opportunity", "campaign", "lead"]
    extensions = mtd.schema.tenant(tenant_id).extensions
    for base in bases[: config.corpus_tables]:
        table = instance_table_name(base, instance)
        for n in range(config.rows_per_table):
            row: dict[str, object] = {
                "id": n + 1,
                "name": f"{base}-{tenant_id}-{n}",
                "status": "open" if n % 2 == 0 else "closed",
                "quantity": n,
                "score": n * 10,
                "active": n % 2 == 0,
                "created": "2008-06-09",
            }
            if base in ("contact", "opportunity", "lead"):
                row["parent"] = 1
            if base == "account" and "healthcare" in extensions:
                row.update(hospital="St. Mary", beds=100 + n)
            if base == "account" and "automotive" in extensions:
                row.update(dealers=3 + n, fleet_size=40)
            if base == "contact" and "gdpr" in extensions:
                row.update(consent=True, consent_date="2018-05-25")
            mtd.insert(tenant_id, table, row)


def shared_table_map_from_catalog(catalog: Any) -> dict[str, frozenset[str]]:
    """Ground-truth shared-table map from the physical schema itself:
    any table carrying meta discriminator columns is shared and every
    one of them must be guarded.  Independent of the (possibly
    mutated) fragment lists."""
    meta_columns = ("tenant", "tbl", "chunk", "col")
    shared: dict[str, frozenset[str]] = {}
    for table in catalog.tables():
        present = frozenset(
            c for c in meta_columns if table.has_column(c)
        )
        if "tenant" in present:
            shared[table.name.lower()] = present
    return shared


def analyze_testbed(
    mtd: MultiTenantDatabase,
    config: AnalysisConfig,
    locus_prefix: str = "",
) -> AnalysisReport:
    """Passes 2 and 3 (plus admin-path replay) for one built testbed."""
    report = AnalysisReport()
    verifier = IsolationVerifier(
        shared_table_map_from_catalog(mtd.db.catalog)
    )
    if config.mutate is not None:
        apply_mutation(mtd, config.mutate)
        # Structural invariants read fragments + catalog without
        # executing the (now broken) transformed statements, so they
        # still run under mutation — LAY00x must catch layout defects.
        report.extend(invariants.check_fragments(mtd, locus_prefix))
    else:
        report.extend(invariants.check_all(mtd, locus_prefix))

    tenants = sorted(c.tenant_id for c in mtd.schema.tenants())

    # -- SELECT shapes: direct and shape-shared ---------------------------
    for tenant_id in tenants:
        instance = _tenant_instance(mtd, tenant_id)
        statements = list(select_corpus(instance, config.corpus_tables))
        statements += extension_corpus(
            mtd.schema.tenant(tenant_id).extensions, instance
        )
        layout = mtd.layout_for(tenant_id)
        for statement in statements:
            stmt = parse_statement(statement.sql)
            locus = f"{locus_prefix}tenant={tenant_id} sql={statement.sql}"
            physical = mtd._physical_select(tenant_id, stmt)
            report.extend(
                verifier.check_statement(
                    physical,
                    GuardContext(expected_tenant=tenant_id),
                    locus,
                )
            )
            if layout.shares_statements:
                allocator = TenantParamAllocator(count_params(stmt))
                shared_physical = mtd._physical_select(
                    tenant_id, stmt, allocator
                )
                report.extend(
                    verifier.check_statement(
                        shared_physical,
                        GuardContext(
                            expected_tenant=tenant_id,
                            tenant_param_range=(
                                allocator.base_params,
                                allocator.base_params + allocator.count,
                            ),
                        ),
                        locus + " [shape-shared]",
                    )
                )
            if config.mutate is None:
                mtd.execute(tenant_id, statement.sql, statement.params)

    # -- cross-tenant statements (MTSQL FOR TENANTS) ----------------------
    # The fused statements carry the declared tenant set as literals;
    # the verifier proves every tenant guard is dominated by the clause
    # (ISO006).  The explicit-set statement names a strict subset so a
    # widened resolution (the seeded widen-crosstenant mutation) has an
    # existing tenant to leak.
    if tenants:
        subset = tuple(tenants[:-1]) or (tenants[0],)
        for statement in cross_tenant_corpus(subset, 0):
            stmt = parse_statement(statement.sql)
            clause = stmt.tenants
            declared = (
                tuple(tenants)
                if clause.all_tenants
                else tuple(sorted(set(clause.ids)))
            )
            ids = mtd._resolve_tenant_set(clause)
            transformer = CrossTenantTransformer(
                mtd.schema, mtd.layout_for, mtd._physical_lookup
            )
            plan = transformer.transform(stmt, ids)
            locus = f"{locus_prefix}cross sql={statement.sql}"
            for group in plan.groups:
                report.extend(
                    verifier.check_statement(
                        group.select,
                        GuardContext(tenant_set=declared),
                        locus,
                    )
                )
            if config.mutate is None:
                mtd.execute_cross(statement.sql, statement.params)

    # -- DML and administrative paths (recorded at the engine) ------------
    if config.mutate is None:
        for tenant_id in tenants:
            instance = _tenant_instance(mtd, tenant_id)
            for statement in dml_corpus(instance):
                locus = f"{locus_prefix}tenant={tenant_id} sql={statement.sql}"
                with record_statements(mtd.db) as recorded:
                    mtd.execute(tenant_id, statement.sql, statement.params)
                for emitted in recorded:
                    report.extend(
                        verifier.check_statement(
                            emitted,
                            GuardContext(expected_tenant=tenant_id),
                            locus,
                        )
                    )
        if config.admin_ops:
            report.extend(
                _check_admin_ops(mtd, verifier, locus_prefix)
            )
        report.extend(invariants.check_all(mtd, locus_prefix))
    return report


def _tenant_instance(mtd: MultiTenantDatabase, tenant_id: int) -> int:
    """Which CRM instance the tenant was provisioned against (instance
    tables are named ``account``, ``account_i1``, ...)."""
    return getattr(mtd, "analysis_instances", {}).get(tenant_id, 0)


def _check_admin_ops(
    mtd: MultiTenantDatabase, verifier: IsolationVerifier, locus_prefix: str
) -> AnalysisReport:
    """Grant, migrate, and drop paths, each recorded and verified."""
    report = AnalysisReport()
    tenants = sorted(c.tenant_id for c in mtd.schema.tenants())
    if not tenants:
        return report
    subject = tenants[-1]

    # Online extension grant (the NULL-backfill path fixed in this PR).
    grantable = (
        mtd.layout.supports_extensions
        and _tenant_instance(mtd, subject) == 0
        and any(e.name == "automotive" for e in mtd.schema.extensions())
        and "automotive" not in mtd.schema.tenant(subject).extensions
    )
    if grantable:
        with record_statements(mtd.db) as recorded:
            mtd.grant_extension(subject, "automotive")
        for emitted in recorded:
            report.extend(
                verifier.check_statement(
                    emitted,
                    GuardContext(expected_tenant=subject),
                    f"{locus_prefix}grant tenant={subject}",
                )
            )

    # Migration plan preservation + recorded movement.
    target_name = "private" if mtd.layout.name != "private" else "extension"
    source_layout = mtd.layout_for(subject)
    source_fragments = {
        table.name: source_layout.fragments(subject, table.name)
        for table in mtd.schema.tables()
    }
    with record_statements(mtd.db) as recorded:
        mtd.migrate_tenant(subject, target_name)
    for emitted in recorded:
        report.extend(
            verifier.check_statement(
                emitted,
                GuardContext(expected_tenant=subject),
                f"{locus_prefix}migrate tenant={subject}",
            )
        )
    target_layout = mtd.layout_for(subject)
    for table in mtd.schema.tables():
        logical = mtd.schema.logical_table(subject, table.name)
        report.extend(
            invariants.check_migration_plan(
                logical.columns,
                source_fragments[table.name],
                target_layout.fragments(subject, table.name),
                f"{locus_prefix}migration-plan tenant={subject} "
                f"table={table.name}",
            )
        )

    # Tenant removal purges only the tenant's own rows.
    victim = tenants[0]
    with record_statements(mtd.db) as recorded:
        mtd.drop_tenant(victim)
    for emitted in recorded:
        report.extend(
            verifier.check_statement(
                emitted,
                GuardContext(expected_tenant=victim),
                f"{locus_prefix}drop tenant={victim}",
            )
        )
    return report


def run_analysis(
    config: AnalysisConfig | None = None,
    log: Callable[[str], None] | None = None,
) -> AnalysisReport:
    """All passes over every layout × variability combination."""
    config = config or AnalysisConfig()
    emit = log or (lambda message: None)
    total = AnalysisReport()
    for layout in config.layouts:
        for variability in config.variabilities:
            prefix = f"layout={layout} v={variability} "
            if config.crash_recover:
                mtd, cleanup = _build_recovered(layout, config, variability)
                prefix += "recovered "
            else:
                mtd, cleanup = build_testbed(layout, config, variability), None
            try:
                report = analyze_testbed(mtd, config, prefix)
            finally:
                if cleanup is not None:
                    cleanup()
            report.count_into(mtd.db.metrics)
            emit(
                f"{layout:14s} v={variability:<5} "
                f"{report.checked:4d} checks, "
                f"{len(report.errors)} error(s), "
                f"{len(report.warnings)} warning(s)"
            )
            total.extend(report)
    return total


def _build_recovered(
    layout: str, config: AnalysisConfig, variability: float
) -> tuple[MultiTenantDatabase, Callable[[], None]]:
    """Build a durable testbed, abandon it without closing (the crash),
    and hand back the recovered instance plus a cleanup callback."""
    path = tempfile.mkdtemp(prefix=f"repro-analysis-{layout}-")
    mtd = build_testbed(layout, config, variability, db_path=path)
    instances = dict(getattr(mtd, "analysis_instances", {}))
    # No close(), no flush: whatever the WAL already made durable is
    # all recovery gets to work with — exactly the crash contract.
    del mtd
    recovered = MultiTenantDatabase.recover(Database(path=path))
    recovered.analysis_instances = instances
    return recovered, lambda: shutil.rmtree(path, ignore_errors=True)
