"""Fused cross-tenant analytics — wall-clock, one statement vs N.

The MTSQL ``FOR TENANTS`` dialect exists so a cross-tenant rollup runs
as **one fused physical statement** per layout group instead of a
per-tenant fan-out loop.  On shared layouts (chunk, universal, pivot,
...) the fused plan scans the shared table once with the tenant set
pushed into the scan and groups by the tenant column, so its cost is
one scan plus grouping — while the loop pays full per-statement
overhead (transform, cache lookup, plan, index probe) once per tenant.

Gate: at 50 tenants the fused grouped-by-tenant rollup must be **>= 3x**
faster than the per-tenant loop on the **chunk** and **universal**
layouts (the paper's two main shared-table designs).  The other layouts
are reported for the trajectory but not gated; ``private`` keeps
per-tenant physical tables, so fusion legitimately buys little there.

Timing rounds are *interleaved* across layouts and both sides (fused /
loop) so machine noise hits every cell equally; each cell reports its
best round.  A parity test asserts the fused rows equal the fan-out
rows merged in tenant order — fusion changes how fast the answer is
computed, never the answer.

Results land in ``benchmarks/results/BENCH_crosstenant.json``; CI
uploads all ``BENCH_*.json`` files as artifacts, so the perf trajectory
is recorded run over run (``benchmarks/collect_bench.py`` merges them).
"""

import json
import pathlib
import time

import pytest

from repro import LogicalColumn, LogicalTable, MultiTenantDatabase
from repro.engine.values import INTEGER, varchar

RESULTS_PATH = (
    pathlib.Path(__file__).parent / "results" / "BENCH_crosstenant.json"
)

TENANTS = 50
ROWS_PER_TENANT = 40

WARMUP = 2
ROUNDS = 5

#: Layouts measured; the gate applies to the paper's two main
#: shared-table designs.
LAYOUTS = ("chunk", "universal", "pivot", "extension", "chunk_folding")
GATED = ("chunk", "universal")
MIN_SPEEDUP = 3.0

#: The fused statement: grouped-by-tenant rollup over the whole fleet.
FUSED_SQL = (
    "SELECT TENANT_ID(), COUNT(*), SUM(val), MAX(val) FROM item "
    "GROUP BY TENANT_ID() ORDER BY TENANT_ID() FOR ALL TENANTS"
)
#: What the fan-out loop runs per tenant to produce the same rows.
LOOP_SQL = "SELECT COUNT(*), SUM(val), MAX(val) FROM item"


def build(layout: str) -> MultiTenantDatabase:
    mtd = MultiTenantDatabase(layout=layout, execution="vectorized")
    mtd.define_table(
        LogicalTable(
            "item",
            (
                LogicalColumn("id", INTEGER, indexed=True, not_null=True),
                LogicalColumn("cat", varchar(10)),
                LogicalColumn("val", INTEGER),
            ),
        )
    )
    for tenant in range(1, TENANTS + 1):
        mtd.create_tenant(tenant)
        for i in range(ROWS_PER_TENANT):
            mtd.insert(
                tenant,
                "item",
                {"id": i, "cat": f"c{i % 5}", "val": i * 3 + tenant},
            )
    return mtd


def fanout_rows(mtd: MultiTenantDatabase) -> list[tuple]:
    """The loop's merged result: one rollup row per tenant, in tenant
    order — the shape the fused statement returns directly."""
    return [
        (tenant,) + tuple(mtd.execute(tenant, LOOP_SQL).rows[0])
        for tenant in mtd.tenant_ids()
    ]


@pytest.fixture(scope="module")
def measurements():
    databases = {layout: build(layout) for layout in LAYOUTS}
    best: dict[str, list[float]] = {
        layout: [float("inf"), float("inf")] for layout in LAYOUTS
    }
    for round_no in range(WARMUP + ROUNDS):
        for layout, mtd in databases.items():
            start = time.perf_counter()
            mtd.execute_cross(FUSED_SQL)
            fused_s = time.perf_counter() - start
            start = time.perf_counter()
            for tenant in mtd.tenant_ids():
                mtd.execute(tenant, LOOP_SQL)
            loop_s = time.perf_counter() - start
            if round_no >= WARMUP:
                best[layout][0] = min(best[layout][0], fused_s)
                best[layout][1] = min(best[layout][1], loop_s)
    results = {
        "config": {
            "tenants": TENANTS,
            "rows_per_tenant": ROWS_PER_TENANT,
            "rounds": ROUNDS,
            "gated_layouts": list(GATED),
            "min_speedup": MIN_SPEEDUP,
        },
        "layouts": {
            layout: {
                "fused_s": best[layout][0],
                "loop_s": best[layout][1],
                "speedup": best[layout][1] / best[layout][0],
            }
            for layout in LAYOUTS
        },
        "_databases": databases,
    }
    recorded = {
        key: value for key, value in results.items() if not key.startswith("_")
    }
    RESULTS_PATH.parent.mkdir(exist_ok=True)
    RESULTS_PATH.write_text(json.dumps(recorded, indent=2) + "\n")
    return results


class TestCrossTenantFusion:
    def test_report(self, benchmark, measurements, report):
        benchmark.pedantic(lambda: None, rounds=1)
        lines = [
            f"Fused cross-tenant rollup vs per-tenant fan-out loop, "
            f"{TENANTS} tenants x {ROWS_PER_TENANT} rows "
            f"(best of {ROUNDS} interleaved)",
            f"{'layout':>14} {'fused ms':>9} {'loop ms':>8} {'speedup':>8}",
        ]
        for layout in LAYOUTS:
            cell = measurements["layouts"][layout]
            gate = "  (gated)" if layout in GATED else ""
            lines.append(
                f"{layout:>14} {cell['fused_s'] * 1000:>9.2f} "
                f"{cell['loop_s'] * 1000:>8.2f} "
                f"{cell['speedup']:>7.2f}x{gate}"
            )
        report("BENCH_crosstenant", "\n".join(lines))

    @pytest.mark.parametrize("layout", LAYOUTS)
    def test_parity(self, measurements, layout):
        """Fused rows must equal the fan-out loop's merged rows."""
        mtd = measurements["_databases"][layout]
        assert mtd.execute_cross(FUSED_SQL).rows == fanout_rows(mtd)

    @pytest.mark.parametrize("layout", GATED)
    def test_speedup_gate(self, measurements, layout):
        """The fused plan must be >= 3x the fan-out loop at 50 tenants
        on the paper's two main shared-table layouts."""
        assert measurements["layouts"][layout]["speedup"] >= MIN_SPEEDUP
