"""Table 2 + Figure 7 — handling many tables (Experiment 1).

Sweeps schema variability over {0.0, 0.5, 0.65, 0.8, 1.0} with a fixed
tenant count, data volume, and workload, reporting baseline compliance,
throughput, 95 % response-time quantiles per action class, and the
buffer-pool hit ratios.

Shape claims asserted (vs. the paper's Table 2):
* baseline compliance falls monotonically from 95 %,
* throughput at variability 1.0 is roughly half of variability 0.0
  (paper: 3,829/7,326 ≈ 0.52),
* the index hit ratio decays while the data hit ratio stays roughly
  constant,
* lightweight select/update quantiles grow with variability.
"""

import pytest

from repro.experiments.manytables import ManyTablesExperiment
from repro.experiments.report import render_series, render_table
from repro.testbed.actions import ActionClass
from repro.testbed.controller import Testbed, TestbedConfig


@pytest.fixture(scope="module")
def sweep():
    experiment = ManyTablesExperiment(
        tenants=100, sessions=40, actions=600, memory_bytes=10 * 1024 * 1024
    )
    return experiment.run()


class TestTable2:
    def test_report(self, benchmark, sweep, report):
        header = ["metric"] + [f"v={r.variability}" for r in sweep]
        classes = [
            ActionClass.SELECT_LIGHT,
            ActionClass.SELECT_HEAVY,
            ActionClass.INSERT_LIGHT,
            ActionClass.INSERT_HEAVY,
            ActionClass.UPDATE_LIGHT,
            ActionClass.UPDATE_HEAVY,
        ]
        rows = [
            ["Total tables"] + [r.total_tables for r in sweep],
            ["Baseline compliance [%]"]
            + [round(r.baseline_compliance, 1) for r in sweep],
            ["Throughput [1/min]"]
            + [round(r.throughput_per_minute) for r in sweep],
        ]
        for action in classes:
            rows.append(
                [f"95% RT {action.value} [ms]"]
                + [round(r.quantiles_ms.get(action, 0.0), 1) for r in sweep]
            )
        rows.append(
            ["Bufferpool hit data [%]"] + [round(r.data_hit_pct, 2) for r in sweep]
        )
        rows.append(
            ["Bufferpool hit index [%]"]
            + [round(r.index_hit_pct, 2) for r in sweep]
        )
        benchmark.pedantic(render_table, args=("Table 2", header, rows), rounds=2)
        report(
            "table2_many_tables",
            render_table(
                "Table 2: Experimental Results (scaled reproduction)",
                header,
                rows,
            ),
        )

    def test_figure7_series(self, benchmark, sweep, report):
        benchmark.pedantic(lambda: None, rounds=1)
        report(
            "fig7_series",
            render_series(
                "Figure 7: Results for Various Schema Variability",
                "variability",
                {
                    "compliance_pct": [
                        (r.variability, r.baseline_compliance) for r in sweep
                    ],
                    "throughput_per_min": [
                        (r.variability, r.throughput_per_minute) for r in sweep
                    ],
                    "data_hit_pct": [
                        (r.variability, r.data_hit_pct) for r in sweep
                    ],
                    "index_hit_pct": [
                        (r.variability, r.index_hit_pct) for r in sweep
                    ],
                },
            ),
        )

    # -- shape assertions -------------------------------------------------

    def test_compliance_starts_at_95(self, sweep):
        assert sweep[0].baseline_compliance == pytest.approx(95.0)

    def test_compliance_declines(self, sweep):
        values = [r.baseline_compliance for r in sweep]
        assert values[-1] < values[0]
        assert all(b <= a + 2.0 for a, b in zip(values, values[1:]))

    def test_throughput_roughly_halves(self, sweep):
        ratio = sweep[-1].throughput_per_minute / sweep[0].throughput_per_minute
        assert 0.2 < ratio < 0.8  # paper: 0.52

    def test_index_hit_ratio_decays_faster_than_data(self, sweep):
        index_drop = sweep[0].index_hit_pct - sweep[-1].index_hit_pct
        data_drop = sweep[0].data_hit_pct - sweep[-1].data_hit_pct
        assert index_drop > data_drop
        assert index_drop > 2.0  # paper: 97.5 -> 83.1

    def test_light_queries_slow_down(self, sweep):
        first = sweep[0].quantiles_ms[ActionClass.SELECT_LIGHT]
        last = sweep[-1].quantiles_ms[ActionClass.SELECT_LIGHT]
        assert last > first

    def test_table_counts_match_table1(self, sweep):
        assert [r.total_tables for r in sweep] == [10, 500, 650, 800, 1000]


class TestBenchmarkedAction:
    """Wall-clock timing of the workhorse action (Select Light) at the
    two extreme variabilities."""

    @pytest.fixture(scope="class")
    def testbeds(self):
        out = {}
        for variability in (0.0, 1.0):
            testbed = Testbed(
                TestbedConfig(
                    variability=variability,
                    tenants=30,
                    sessions=4,
                    actions=10,
                    memory_bytes=4 * 1024 * 1024,
                )
            )
            testbed.setup()
            out[variability] = testbed
        return out

    @pytest.mark.parametrize("variability", [0.0, 1.0])
    def test_select_light_wallclock(self, benchmark, testbeds, variability):
        testbed = testbeds[variability]
        mtd = testbed.mtd

        def point_query():
            return mtd.execute(1, "SELECT * FROM account WHERE id = 1")

        result = benchmark(point_query)
        assert result.rows
