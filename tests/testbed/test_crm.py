"""Tests for the CRM schema (Figure 5) and schema instances."""

from repro.testbed.crm import (
    CRM_PARENTS,
    CRM_TABLE_NAMES,
    REPORTING_INDEXES,
    crm_extensions,
    crm_tables,
    instance_table_name,
)


class TestSchemaShape:
    def test_ten_tables(self):
        assert len(CRM_TABLE_NAMES) == 10
        assert len(crm_tables()) == 10

    def test_about_twenty_columns_each(self):
        for table in crm_tables():
            assert 19 <= len(table.columns) <= 21

    def test_every_table_has_entity_id(self):
        for table in crm_tables():
            first = table.columns[0]
            assert first.lname == "id"
            assert first.indexed and first.not_null

    def test_dag_parents_exist(self):
        names = set(CRM_TABLE_NAMES)
        for child, parent in CRM_PARENTS.items():
            assert child in names and parent in names

    def test_roots_have_no_parent_column(self):
        by_name = {t.name: t for t in crm_tables()}
        assert not by_name["campaign"].has_column("parent")
        assert not by_name["account"].has_column("parent")

    def test_children_have_parent_column(self):
        by_name = {t.name: t for t in crm_tables()}
        for child in CRM_PARENTS:
            assert by_name[child].has_column("parent")

    def test_twelve_reporting_indexes(self):
        assert len(REPORTING_INDEXES) == 12
        tables = {t.name: t for t in crm_tables()}
        for table_name, column in REPORTING_INDEXES:
            assert tables[table_name].column(column).indexed


class TestInstances:
    def test_instance_zero_uses_plain_names(self):
        assert instance_table_name("account", 0) == "account"

    def test_instances_are_disjoint(self):
        names0 = {t.name for t in crm_tables(0)}
        names1 = {t.name for t in crm_tables(1)}
        assert names0.isdisjoint(names1)

    def test_instances_same_shape(self):
        for t0, t1 in zip(crm_tables(0), crm_tables(1)):
            assert len(t0.columns) == len(t1.columns)

    def test_extensions_reference_instance_tables(self):
        for extension in crm_extensions(2):
            assert extension.base_table.endswith("_i2")
