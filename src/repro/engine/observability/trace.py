"""Per-query traces: one statement's engine work, attributed.

A :class:`QueryTrace` is the unit the experiments consume: it snapshots
the buffer-pool, executor, and lock counters around one statement and
keeps the deltas, the wall time, the result, and — for SELECTs — the
EXPLAIN ANALYZE operator tree.  ``Database.trace(sql)`` produces one;
the Figure 10 / 11 benchmarks and Experiment 2 harness read page-read
counts from traces instead of hand-rolled global snapshot/delta pairs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..durability.wal import WalStats
from ..executor import ExecStats
from ..locks import LockStats
from ..pager import PoolStats
from .analyze import OperatorStats


@dataclass
class QueryTrace:
    """Everything the engine did on behalf of one statement."""

    sql: str
    params: tuple
    columns: list[str]
    rows: list[tuple]
    rowcount: int
    elapsed_ms: float
    pool: PoolStats
    exec: ExecStats
    locks: LockStats
    #: WAL activity (records appended, bytes flushed, fsyncs) caused by
    #: this statement; all-zero in memory mode.
    wal: WalStats = field(default_factory=WalStats)
    operators: list[OperatorStats] = field(default_factory=list)
    plan: str | None = None
    #: Whether the statement was served from the plan cache (SELECTs:
    #: cached plan reused without re-planning; DML: parse skipped).
    cache_hit: bool = False

    # -- the counters the paper's figures are built from ------------------

    @property
    def logical_reads(self) -> int:
        """Figure 10's y-axis for this query."""
        return self.pool.logical_total

    @property
    def physical_reads(self) -> int:
        return self.pool.physical_total

    @property
    def data_reads(self) -> int:
        return self.pool.logical_data

    @property
    def index_reads(self) -> int:
        return self.pool.logical_index

    @property
    def index_read_share(self) -> float:
        """Fraction of logical reads issued by index accesses (the paper
        reports 74-80 % for the chunked representations)."""
        total = self.pool.logical_total
        return self.pool.logical_index / total if total else 0.0

    def scalar(self) -> object:
        return self.rows[0][0] if self.rows and self.rows[0] else None

    def render(self) -> str:
        """Human-readable trace: header, counters, then the analyzed
        plan when one was captured."""
        lines = [
            f"-- trace: {self.sql}",
            f"rows={self.rowcount} elapsed={self.elapsed_ms:.3f}ms",
            (
                f"pool: logical={self.pool.logical_total} "
                f"(data={self.pool.logical_data} index={self.pool.logical_index}) "
                f"physical={self.pool.physical_total} "
                f"writes={self.pool.writes} evictions={self.pool.evictions}"
            ),
            (
                f"exec: scanned={self.exec.rows_scanned} "
                f"fetched={self.exec.rows_fetched} "
                f"joined={self.exec.rows_joined} "
                f"lookups={self.exec.index_lookups} "
                f"sorts={self.exec.sorts} "
                f"batches={self.exec.batches}"
            ),
            (
                f"locks: acquisitions={self.locks.acquisitions} "
                f"conflicts={self.locks.conflicts} "
                f"waits={self.locks.waits} wait_ms={self.locks.wait_ms:.3f}"
            ),
        ]
        if self.wal.records or self.wal.bytes_written:
            lines.append(
                f"wal: records={self.wal.records} "
                f"bytes={self.wal.bytes_written} "
                f"flushes={self.wal.flushes} fsyncs={self.wal.fsyncs}"
            )
        if self.plan:
            lines.append(self.plan)
        return "\n".join(lines)
