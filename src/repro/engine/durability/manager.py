"""The durability coordinator.

One :class:`DurabilityManager` per disk-backed database owns the WAL and
the page store and enforces the protocol between them:

* **WAL rule** — before a dirty page reaches the store, the log is
  flushed through that page's LSN (:meth:`before_page_write`).
* **Fuzzy checkpoints** — flush every dirty frame in place, fsync the
  store, then atomically swap in a fresh WAL whose head is a snapshot of
  the catalog's physical layout (plus the active transaction's undo log,
  so a checkpoint may run mid-transaction).  Old page versions are
  compacted away afterwards.
* **Admin-operation atomicity** — multi-statement administrative
  operations (schema extension grants, tenant migration/deletion) are
  bracketed by begin/end markers.  Recovery replays *nothing* from an
  operation whose end marker never made it to disk, so a crash mid
  operation makes it never-happened instead of half-done.

Transaction-id and admin-operation-id allocation also live here so the
counters can be carried through checkpoints.
"""

from __future__ import annotations

import os
import time
from contextlib import contextmanager
from dataclasses import dataclass

from ..errors import EngineError
from .faults import FaultInjector, SimulatedCrash
from .pagestore import DiskPageStore
from .wal import WriteAheadLog

WAL_FILENAME = "wal.log"
PAGES_DIRNAME = "pages"

#: Default auto-checkpoint trigger: log volume since the last checkpoint.
AUTO_CHECKPOINT_BYTES = 256 * 1024


@dataclass
class DurabilityOptions:
    """Tuning and test knobs for one disk-backed database."""

    #: Commit terminals per fsync: 1 = classic synchronous commit; N > 1
    #: batches N commits behind one fsync (group commit).
    group_commit: int = 1
    #: Checkpoint automatically once this much log has accumulated
    #: (checked between top-level statements).  0 disables.
    auto_checkpoint_bytes: int = AUTO_CHECKPOINT_BYTES
    #: Fault injection schedule (crashpoints, torn writes, short fsyncs).
    faults: FaultInjector | None = None
    #: Seeded-bug switch for testing the tests (e.g. ``skip-wal-flush``).
    mutate: str | None = None


class DurabilityManager:
    """WAL + page store + the protocol between them."""

    def __init__(
        self,
        path: str,
        *,
        metrics=None,
        options: DurabilityOptions | None = None,
    ) -> None:
        self.path = path
        os.makedirs(path, exist_ok=True)
        self.options = options or DurabilityOptions()
        self.faults = self.options.faults or FaultInjector()
        self.metrics = metrics
        self.wal = WriteAheadLog(
            os.path.join(path, WAL_FILENAME),
            metrics=metrics,
            faults=self.faults,
            group_commit=self.options.group_commit,
            mutate=self.options.mutate,
        )
        self.store = DiskPageStore(
            os.path.join(path, PAGES_DIRNAME),
            metrics=metrics,
            faults=self.faults,
        )
        #: True while recovery (or the multi-tenant layer's replay) is
        #: re-executing logged work: all logging is suppressed.
        self.replaying = False
        self.next_txid = 1
        self.next_admin = 1
        self._active_admin: int | None = None
        #: Completed admin operations, oldest first, as
        #: ``{"id", "op", "payload", "end"}`` — carried through
        #: checkpoints and handed to the schema-mapping layer on
        #: recovery so it can rebuild its bookkeeping.
        self.admin_ops: list[dict] = []
        #: Filled by :func:`~repro.engine.durability.recovery.recover`.
        self.recovery_info: dict = {}
        #: Optional dynamic sanitizer (write-ahead protocol checking).
        self.sanitizer = None

    #: Seeded defect: logical row records (ins/del/upd) are silently
    #: dropped instead of appended — the write-ahead discipline breaks
    #: while execution stays plausible.  The ``--sanitize`` gate must
    #: catch this as CON002.
    MUTATE_SKIP_APPEND = "skip-wal-append"

    # -- logging ----------------------------------------------------------

    def log(self, record: dict) -> int | None:
        """Append one logical record (suppressed during replay).  The
        active admin operation, if any, tags the record so recovery can
        discard it if the operation never completed."""
        if self.replaying:
            return None
        is_row_record = record.get("t") in ("ins", "del", "upd")
        if (
            is_row_record
            and self.options.mutate == self.MUTATE_SKIP_APPEND
        ):
            return None
        if self._active_admin is not None:
            record["admin"] = self._active_admin
        if is_row_record and self.sanitizer is not None:
            self.sanitizer.on_wal_row_record()
        return self.wal.append(record)

    def log_commit(self, txid: int) -> None:
        if self.replaying:
            return
        self.faults.crashpoint("txn.commit")
        record: dict = {"t": "commit", "tx": txid}
        if self._active_admin is not None:
            record["admin"] = self._active_admin
        self.wal.commit_append(record)

    def log_rollback(self, txid: int) -> None:
        if self.replaying:
            return
        record: dict = {"t": "rollback", "tx": txid}
        if self._active_admin is not None:
            record["admin"] = self._active_admin
        self.wal.commit_append(record)

    def log_ddl(self, ddl: dict) -> None:
        """Log a DDL statement *after* it applied successfully (failed
        DDL must never replay).  Self-committing: flushed immediately
        unless inside an admin operation, whose end marker flushes."""
        if self.replaying:
            return
        record = {"t": "ddl", **ddl}
        if self._active_admin is not None:
            record["admin"] = self._active_admin
            self.wal.append(record)
        else:
            self.wal.append(record)
            self.wal.flush()

    def allocate_txid(self) -> int:
        txid = self.next_txid
        self.next_txid += 1
        return txid

    # -- the WAL rule ------------------------------------------------------

    @property
    def current_lsn(self) -> int:
        """LSN pages are stamped with when dirtied."""
        return self.wal.end_lsn

    def before_page_write(self, page) -> None:
        """Called by the buffer pool before a dirty page reaches the
        store: write-ahead means the log covering the page's changes
        must be durable first."""
        self.faults.crashpoint("pager.writeback")
        self.wal.flush_to(page.lsn)

    # -- admin operations --------------------------------------------------

    @property
    def in_admin_operation(self) -> bool:
        return self._active_admin is not None

    @contextmanager
    def admin_operation(self, op: str, payload: dict, end_payload):
        """Bracket a multi-statement administrative operation.

        All records logged inside the bracket are tagged with the
        operation id; recovery discards every tagged record unless the
        end marker is on disk, making the operation crash-atomic.  On a
        non-crash failure the end marker *is* written (the caller
        observes — and keeps running with — the half-applied state, so
        replay must reproduce it).  ``end_payload`` is called at end
        time; its value rides in the end marker.
        """
        if self.replaying:
            yield
            return
        if self._active_admin is not None:
            raise EngineError("nested admin operations are not supported")
        op_id = self.next_admin
        self.next_admin += 1
        self.wal.append(
            {"t": "admin_begin", "id": op_id, "op": op, "payload": payload}
        )
        self.wal.flush()
        self._active_admin = op_id
        self.faults.crashpoint(f"admin.{op}.begin")
        try:
            yield
        except SimulatedCrash:
            raise  # died mid-operation: no end marker, never happened
        except BaseException:
            self._finish_admin(op_id, op, payload, end_payload)
            raise
        else:
            self.faults.crashpoint(f"admin.{op}.end")
            self._finish_admin(op_id, op, payload, end_payload)

    def _finish_admin(self, op_id: int, op: str, payload: dict, end_payload):
        self._active_admin = None
        end = end_payload() if callable(end_payload) else end_payload
        self.wal.append({"t": "admin_end", "id": op_id, "end": end})
        self.wal.flush()
        self.admin_ops.append(
            {"id": op_id, "op": op, "payload": payload, "end": end}
        )

    # -- checkpoints -------------------------------------------------------

    def checkpoint(self, db) -> bool:
        """Take a fuzzy checkpoint.  Refused (returns False) during an
        admin operation — its begin/end bracket must stay within one log
        file — and during replay."""
        if self.replaying or self._active_admin is not None:
            return False
        started = time.perf_counter()
        self.faults.crashpoint("checkpoint.begin")
        db.pool.write_back_all()
        self.store.sync()
        snapshot = capture_snapshot(db, self)
        self.wal.checkpoint_reset({"t": "checkpoint", "snapshot": snapshot})
        self.store.compact()
        self.faults.crashpoint("checkpoint.end")
        if self.metrics is not None:
            self.metrics.counter("db.checkpoint.count").inc()
            self.metrics.gauge("db.checkpoint.last_ms").set(
                (time.perf_counter() - started) * 1000.0
            )
        return True

    def maybe_checkpoint(self, db) -> bool:
        """Auto-checkpoint when enough log has accumulated."""
        threshold = self.options.auto_checkpoint_bytes
        if threshold <= 0 or self.replaying or self._active_admin is not None:
            return False
        if self.wal.bytes_since_checkpoint < threshold:
            return False
        return self.checkpoint(db)

    def close(self) -> None:
        self.wal.close()
        self.store.close()


# -- checkpoint snapshots --------------------------------------------------
#
# A snapshot is the catalog's *physical shape* — which tables exist, which
# pages each heap and B-tree owns, every allocator counter — but not page
# contents: those are in the (fsynced) page store.  Restore rebuilds the
# in-memory objects and points them at the same pages.


def capture_snapshot(db, durability: DurabilityManager) -> dict:
    """Everything needed to rebuild the catalog over the page store."""
    catalog = db.catalog
    tables = []
    for table in catalog.tables():
        heap = table.heap
        indexes = []
        for info in table.indexes.values():
            btree = info.btree
            indexes.append(
                {
                    "name": info.name,
                    "columns": list(info.column_names),
                    "unique": info.unique,
                    "segment": btree.segment_id,
                    "root_id": btree.root_id,
                    "height": btree.height,
                    "entry_count": btree.entry_count,
                    "distinct_keys": btree.distinct_keys,
                    "prefix_distinct": btree.prefix_distinct_counts(),
                }
            )
        tables.append(
            {
                "name": table.name,
                "columns": list(table.columns),
                "storage": heap.storage_kind,
                "segment": heap.segment_id,
                "page_ids": heap.page_ids(),
                "free_map": heap.free_map(),
                "row_count": heap.row_count,
                "indexes": indexes,
            }
        )
    return {
        "tables": tables,
        "next_segment": catalog.next_segment,
        "metadata_bytes": catalog.metadata_bytes,
        "ddl_statements": catalog.ddl_statements,
        "version": catalog.version,
        "next_page_id": db.pool.next_page_id,
        "next_txid": durability.next_txid,
        "next_admin": durability.next_admin,
        "admin_ops": list(durability.admin_ops),
        "active_txn": db.transactions.serialize_active(),
    }


def restore_snapshot(db, snapshot: dict) -> dict | None:
    """Rebuild the catalog from a snapshot (into a freshly constructed,
    empty database).  Returns the serialized in-flight transaction the
    checkpoint was fuzzy over, or ``None``."""
    from ..btree import BTreeIndex
    from ..catalog import IndexInfo, Table
    from ..columnstore import ColumnStore
    from ..heap import HeapFile

    catalog = db.catalog
    for entry in snapshot["tables"]:
        # Snapshots from before the columnar format carry no storage key.
        if entry.get("storage", "heap") == "columnar":
            heap: HeapFile = ColumnStore(
                db.pool,
                entry["segment"],
                catalog.insert_strategy,
                ncols=len(entry["columns"]),
                metrics=db.metrics,
            )
        else:
            heap = HeapFile(
                db.pool,
                entry["segment"],
                catalog.insert_strategy,
                metrics=db.metrics,
            )
        heap.restore(entry["page_ids"], entry["free_map"], entry["row_count"])
        table = Table(entry["name"], list(entry["columns"]), heap)
        for ix in entry["indexes"]:
            btree = BTreeIndex.attach(
                db.pool,
                ix["segment"],
                unique=ix["unique"],
                prefix_compression=catalog.prefix_compression,
                metrics=db.metrics,
                root_id=ix["root_id"],
                height=ix["height"],
                entry_count=ix["entry_count"],
                distinct_keys=ix["distinct_keys"],
                prefix_distinct=ix["prefix_distinct"],
            )
            positions = tuple(
                table.column_position(c) for c in ix["columns"]
            )
            table.indexes[ix["name"].lower()] = IndexInfo(
                ix["name"],
                table.name,
                tuple(ix["columns"]),
                ix["unique"],
                btree,
                positions,
            )
        catalog.adopt(table)
    catalog.restore_counters(
        next_segment=snapshot["next_segment"],
        metadata_bytes=snapshot["metadata_bytes"],
        ddl_statements=snapshot["ddl_statements"],
        version=snapshot["version"],
    )
    db.pool.next_page_id = snapshot["next_page_id"]
    return snapshot.get("active_txn")
