"""Unit tests for expression compilation: three-valued logic, schema
resolution, coercions, and the Universal layout's conversion functions."""

import datetime

import pytest
from hypothesis import given, strategies as st

from repro.engine.errors import PlanError, UnknownObjectError
from repro.engine.expr import ExprCompiler, Schema, Slot, referenced_bindings
from repro.engine.sql.parser import parse_statement


def compile_predicate(sql_predicate, slots, subquery_executor=None):
    stmt = parse_statement(f"SELECT a FROM t WHERE {sql_predicate}")
    compiler = ExprCompiler(Schema(slots), subquery_executor)
    return compiler.compile(stmt.where)


SLOTS = [Slot("t", "a"), Slot("t", "b"), Slot("t", "s")]


def evaluate(sql_predicate, row, params=()):
    return compile_predicate(sql_predicate, SLOTS)(row, params)


class TestThreeValuedLogic:
    """SQL's NULL semantics, which filters rely on (only True passes)."""

    def test_comparison_with_null_is_unknown(self):
        assert evaluate("a = 1", (None, 0, "")) is None
        assert evaluate("a < 1", (None, 0, "")) is None

    def test_and_truth_table(self):
        assert evaluate("a = 1 AND b = 2", (1, 2, "")) is True
        assert evaluate("a = 1 AND b = 2", (1, 3, "")) is False
        assert evaluate("a = 1 AND b = 2", (1, None, "")) is None
        # False AND unknown = False (short-circuit must not change it).
        assert evaluate("a = 2 AND b = 2", (1, None, "")) is False

    def test_or_truth_table(self):
        assert evaluate("a = 1 OR b = 2", (0, 2, "")) is True
        assert evaluate("a = 1 OR b = 2", (0, 3, "")) is False
        assert evaluate("a = 1 OR b = 2", (0, None, "")) is None
        # True OR unknown = True.
        assert evaluate("a = 1 OR b = 2", (1, None, "")) is True

    def test_not_unknown_is_unknown(self):
        assert evaluate("NOT a = 1", (None, 0, "")) is None
        assert evaluate("NOT a = 1", (2, 0, "")) is True

    def test_arithmetic_propagates_null(self):
        assert evaluate("a + b = 3", (None, 2, "")) is None

    def test_is_null_is_two_valued(self):
        assert evaluate("a IS NULL", (None, 0, "")) is True
        assert evaluate("a IS NOT NULL", (None, 0, "")) is False

    def test_in_list_with_null_operand(self):
        assert evaluate("a IN (1, 2)", (None, 0, "")) is None


class TestResolution:
    def test_qualified_and_unqualified(self):
        schema = Schema([Slot("x", "a"), Slot("y", "b")])
        compiler = ExprCompiler(schema)
        stmt = parse_statement("SELECT 1 FROM t WHERE x.a = b")
        fn = compiler.compile(stmt.where)
        assert fn((5, 5), ()) is True

    def test_ambiguity_rejected(self):
        schema = Schema([Slot("x", "a"), Slot("y", "a")])
        compiler = ExprCompiler(schema)
        stmt = parse_statement("SELECT 1 FROM t WHERE a = 1")
        with pytest.raises(PlanError):
            compiler.compile(stmt.where)

    def test_unknown_column_rejected(self):
        with pytest.raises(UnknownObjectError):
            evaluate("zz = 1", (0, 0, ""))

    def test_qualified_fallback_to_output_slots(self):
        """Qualified refs resolve against unbinding (output) slots when
        no bound slot matches — ORDER BY c.name after projection."""
        schema = Schema([Slot(None, "name")])
        compiler = ExprCompiler(schema)
        stmt = parse_statement("SELECT 1 FROM t WHERE c.name = 'x'")
        assert compiler.compile(stmt.where)(("x",), ()) is True


class TestParams:
    def test_param_positions(self):
        fn = compile_predicate("a = ? AND b = ?", SLOTS)
        assert fn((1, 2, ""), [1, 2]) is True
        assert fn((1, 2, ""), [2, 1]) is False

    def test_missing_param_raises(self):
        from repro.engine.errors import ExecutionError

        fn = compile_predicate("a = ?", SLOTS)
        with pytest.raises(ExecutionError):
            fn((1, 2, ""), [])


class TestScalarFunctions:
    def test_conversions(self):
        schema = Schema([Slot("t", "v")])
        compiler = ExprCompiler(schema)

        def call(fn_sql, value):
            stmt = parse_statement(f"SELECT {fn_sql} FROM t")
            return compiler.compile(stmt.items[0].expr)((value,), ())

        assert call("TO_INT(v)", "42") == 42
        assert call("TO_DOUBLE(v)", "2.5") == 2.5
        assert call("TO_DATE(v)", "2008-06-09") == datetime.date(2008, 6, 9)
        assert call("TO_BOOL(v)", "1") is True
        assert call("TO_BOOL(v)", 0) is False
        assert call("TO_STR(v)", 7) == "7"
        assert call("TO_INT(v)", None) is None
        assert call("LENGTH(v)", "abc") == 3
        assert call("UPPER(v)", "ab") == "AB"
        assert call("LOWER(v)", "AB") == "ab"
        assert call("ABS(v)", -3) == 3
        assert call("COALESCE(v, 9)", None) == 9

    def test_unknown_function_rejected(self):
        with pytest.raises(PlanError):
            compile_predicate("FROBNICATE(a) = 1", SLOTS)

    def test_aggregate_outside_group_rejected(self):
        with pytest.raises(PlanError):
            compile_predicate("SUM(a) = 1", SLOTS)


class TestLike:
    @pytest.mark.parametrize(
        "pattern,value,expected",
        [
            ("a%", "abc", True),
            ("a%", "ba", False),
            ("%c", "abc", True),
            ("a_c", "abc", True),
            ("a_c", "abbc", False),
            ("%", "", True),
        ],
    )
    def test_patterns(self, pattern, value, expected):
        assert evaluate(f"s LIKE '{pattern}'", (0, 0, value)) is expected

    def test_like_escapes_regex_metachars(self):
        assert evaluate("s LIKE 'a.c'", (0, 0, "abc")) is False
        assert evaluate("s LIKE 'a.c'", (0, 0, "a.c")) is True


class TestCoercion:
    def test_date_vs_iso_string(self):
        schema = Schema([Slot("t", "d")])
        compiler = ExprCompiler(schema)
        stmt = parse_statement("SELECT 1 FROM t WHERE d < '2005-01-01'")
        fn = compiler.compile(stmt.where)
        assert fn((datetime.date(2004, 1, 1),), ()) is True
        assert fn((datetime.date(2006, 1, 1),), ()) is False

    def test_incompatible_types_fall_back_to_total_order(self):
        # Comparing a string column against a number must not crash.
        assert evaluate("s = 5", (0, 0, "five")) is False


class TestReferencedBindings:
    def test_collects_qualified(self):
        stmt = parse_statement("SELECT 1 FROM t WHERE x.a = y.b AND x.c > 1")
        assert referenced_bindings(stmt.where) == {"x", "y"}

    def test_unqualified_marker(self):
        stmt = parse_statement("SELECT 1 FROM t WHERE a = 1")
        assert referenced_bindings(stmt.where) == {"?"}

    def test_constants_have_none(self):
        stmt = parse_statement("SELECT 1 FROM t WHERE 1 = 1")
        assert referenced_bindings(stmt.where) == set()


class TestPropertyBasedLogic:
    @given(
        a=st.one_of(st.none(), st.integers(-5, 5)),
        b=st.one_of(st.none(), st.integers(-5, 5)),
    )
    def test_de_morgan(self, a, b):
        """NOT (p AND q) == (NOT p) OR (NOT q) under 3VL."""
        left = evaluate("NOT (a = 1 AND b = 1)", (a, b, ""))
        right = evaluate("NOT a = 1 OR NOT b = 1", (a, b, ""))
        assert left == right

    @given(value=st.one_of(st.none(), st.integers(-5, 5)))
    def test_excluded_middle_fails_only_for_null(self, value):
        result = evaluate("a = 1 OR a <> 1", (value, 0, ""))
        assert result is (None if value is None else True)
