"""Unit tests for the optimizer-quality harness itself.

The quick tests run a couple of corpus seeds on the conventional layout
and check the harness's accounting: plan-space enumeration, work-cost
bookkeeping, feedback's before/after measurement, the gate, and the
JSON report.  The full 8-layout sweep (what CI's ``optimizer-quality``
job runs via the CLI) is marked ``slow``.
"""

import json

import pytest

from repro.engine.sql.parser import parse_statement
from repro.quality import __main__ as cli
from repro.quality.corpus import build_engine_database
from repro.quality.harness import (
    HarnessConfig,
    all_layouts,
    run_harness,
    run_layout,
)
from repro.quality.planspace import enumerate_plans
from repro.quality.report import evaluate_gate, render_report, report_to_json


class TestPlanSpace:
    def test_default_plan_first_and_signatures_unique(self):
        db = build_engine_database()
        stmt = parse_statement(
            "SELECT p.id FROM p, c WHERE p.id = c.parent AND p.grp = 1"
        )
        alternatives = enumerate_plans(db, stmt, budget=24)
        assert alternatives[0].is_default
        signatures = [a.signature for a in alternatives]
        assert len(signatures) == len(set(signatures))
        assert len(alternatives) > 1

    def test_budget_bounds_enumeration(self):
        db = build_engine_database()
        stmt = parse_statement(
            "SELECT p.id FROM p, c, c AS d "
            "WHERE p.id = c.parent AND d.parent = p.id"
        )
        assert len(enumerate_plans(db, stmt, budget=4)) <= 4

    def test_single_table_no_alternatives_still_has_default(self):
        db = build_engine_database()
        stmt = parse_statement("SELECT p.id FROM p")
        alternatives = enumerate_plans(db, stmt, budget=24)
        assert alternatives[0].is_default


@pytest.fixture(scope="module")
def outcome():
    return run_layout("conventional", seeds=[3, 9], budget=8, feedback=True)


class TestRunLayout:
    def test_best_never_exceeds_chosen(self, outcome):
        for q in outcome.queries:
            assert q.best.work <= q.chosen.work
            assert q.ratio_before >= 1.0
            assert q.ratio_after >= 1.0

    def test_feedback_improves_or_keeps(self, outcome):
        # Seeds 3 and 9 are exactly the shapes feedback fixes (a wide
        # range scan and an unrestricted join): after observation the
        # chosen plan must be the enumerated best.
        for q in outcome.queries:
            assert q.ratio_after <= q.ratio_before
            assert q.ratio_after == pytest.approx(1.0)

    def test_q_error_recorded(self, outcome):
        assert any(q.max_q_error is not None for q in outcome.queries)
        for q in outcome.queries:
            if q.max_q_error is not None:
                assert q.max_q_error >= 1.0

    def test_feedback_off_keeps_static_choice(self):
        static = run_layout("conventional", seeds=[3], budget=8, feedback=False)
        (q,) = static.queries
        assert q.chosen_after.signature == q.chosen.signature
        assert not q.plan_changed

    def test_all_layouts_listed(self):
        layouts = all_layouts()
        assert layouts[0] == "conventional"
        assert len(layouts) == 8


class TestGateAndReport:
    def test_gate_passes_on_optimal_outcome(self, outcome):
        gate = evaluate_gate({"conventional": outcome})
        assert gate.passed
        assert gate.optimal_rate == 1.0

    def test_gate_fails_on_missing_layout(self, outcome):
        gate = evaluate_gate({}, layout="conventional")
        assert not gate.passed

    def test_gate_honors_thresholds(self, outcome):
        strict = evaluate_gate(
            {"conventional": outcome}, threshold=0.5, required_rate=1.0
        )
        assert not strict.passed
        assert "seed" in strict.detail

    def test_report_roundtrips_to_json(self, outcome):
        gate = evaluate_gate({"conventional": outcome})
        payload = report_to_json({"conventional": outcome}, gate)
        encoded = json.loads(json.dumps(payload))
        assert encoded["benchmark"] == "optimizer_quality"
        layer = encoded["layouts"]["conventional"]
        assert layer["feedback"] is True
        assert len(layer["queries"]) == 2
        assert encoded["gate"]["passed"] is True

    def test_render_report_mentions_gate(self, outcome):
        gate = evaluate_gate({"conventional": outcome})
        text = render_report({"conventional": outcome}, gate)
        assert "GATE [conventional] PASS" in text
        assert "optimal rate" in text


class TestCli:
    def test_cli_writes_results_and_gates(self, tmp_path):
        out = tmp_path / "results.json"
        code = cli.main(
            [
                "--seeds", "2",
                "--budget", "6",
                "--layouts", "conventional",
                "--gate",
                "--output", str(out),
            ]
        )
        assert code == 0
        payload = json.loads(out.read_text())
        assert payload["gate"]["layout"] == "conventional"
        assert payload["config"]["seeds"] == 2

    def test_cli_rejects_unknown_layout(self):
        with pytest.raises(SystemExit):
            cli.main(["--layouts", "nope"])


@pytest.mark.slow
def test_full_sweep_all_layouts_gate_passes():
    """The CI ``optimizer-quality`` job's assertion, as a test: the full
    corpus on every layout, gate evaluated on the conventional one."""
    outcomes = run_harness(HarnessConfig())
    assert set(outcomes) == set(all_layouts())
    gate = evaluate_gate(outcomes)
    assert gate.passed, gate.detail
