"""DML transformation: Section 6.3.

A single logical INSERT / UPDATE / DELETE generally fans out into
multiple statements over the layout's fragments.  Updates (and deletes,
which become updates under the Trashcan / soft-delete option) run in two
phases:

* **phase (a)** — a query, built with the §6.1 transformation, collects
  the Row ids (and, in buffered mode, current column values) of every
  affected logical row;
* **phase (b)** — per affected fragment, an UPDATE/DELETE with local
  conditions on the meta-data columns and ``row`` only.

Phase (b) comes in the paper's two variants: ``SUBQUERY`` pushes the
phase-(a) query into an ``IN`` predicate and lets the database do all
the work (re-evaluating it per fragment); ``BUFFERED`` (the default)
buffers the affected row ids in the application and issues per-row
statements with literal values — which also supports SET expressions
that span fragments.
"""

from __future__ import annotations

import enum

from ...engine.errors import PlanError, UnknownObjectError
from ...engine.expr import ExprCompiler, Schema, Slot
from ...engine.sql import ast
from ..layouts.base import ALIVE, Fragment
from ..schema import MultiTenantSchema
from .query import ROW_ALIAS, build_reconstruction

#: Batch size for ``row IN (...)`` literal lists in buffered mode.
IN_BATCH = 200


class UpdateMode(enum.Enum):
    BUFFERED = "buffered"
    SUBQUERY = "subquery"


def substitute_params(expr: ast.Expr, params) -> ast.Expr:
    """Replace ``?`` parameters with literals so generated statements
    are self-contained (parameter positions would otherwise shift when
    one logical statement becomes many physical ones)."""
    if isinstance(expr, ast.Param):
        return ast.Literal(params[expr.index])
    if isinstance(expr, ast.BinaryOp):
        return ast.BinaryOp(
            expr.op,
            substitute_params(expr.left, params),
            substitute_params(expr.right, params),
        )
    if isinstance(expr, ast.UnaryOp):
        return ast.UnaryOp(expr.op, substitute_params(expr.operand, params))
    if isinstance(expr, ast.IsNull):
        return ast.IsNull(substitute_params(expr.operand, params), expr.negated)
    if isinstance(expr, ast.FuncCall):
        return ast.FuncCall(
            expr.name,
            tuple(substitute_params(a, params) for a in expr.args),
            expr.star,
            expr.distinct,
        )
    if isinstance(expr, ast.InList):
        return ast.InList(
            substitute_params(expr.operand, params),
            tuple(substitute_params(i, params) for i in expr.items),
            expr.negated,
        )
    if isinstance(expr, ast.InSubquery):
        return ast.InSubquery(
            substitute_params(expr.operand, params),
            _substitute_select(expr.subquery, params),
            expr.negated,
        )
    return expr


def _substitute_select(select: ast.Select, params) -> ast.Select:
    return ast.Select(
        items=tuple(
            ast.SelectItem(
                item.expr
                if isinstance(item.expr, ast.Star)
                else substitute_params(item.expr, params),
                item.alias,
            )
            for item in select.items
        ),
        sources=tuple(
            ast.SubquerySource(_substitute_select(s.select, params), s.alias)
            if isinstance(s, ast.SubquerySource)
            else s
            for s in select.sources
        ),
        where=substitute_params(select.where, params)
        if select.where is not None
        else None,
        group_by=tuple(substitute_params(e, params) for e in select.group_by),
        having=substitute_params(select.having, params)
        if select.having is not None
        else None,
        order_by=tuple(
            ast.OrderItem(substitute_params(o.expr, params), o.descending)
            for o in select.order_by
        ),
        limit=select.limit,
        distinct=select.distinct,
    )


def _column_refs(expr: ast.Expr) -> list[str]:
    out: list[str] = []

    def walk(node) -> None:
        if isinstance(node, ast.ColumnRef):
            column = node.column.lower()
            if column not in out:
                out.append(column)
        elif isinstance(node, ast.BinaryOp):
            walk(node.left)
            walk(node.right)
        elif isinstance(node, (ast.UnaryOp, ast.IsNull)):
            walk(node.operand)
        elif isinstance(node, ast.FuncCall):
            for arg in node.args:
                walk(arg)
        elif isinstance(node, ast.InList):
            walk(node.operand)
            for item in node.items:
                walk(item)
        elif isinstance(node, ast.InSubquery):
            walk(node.operand)

    walk(expr)
    return out


def _qualify_to_binding(expr: ast.Expr, binding: str) -> ast.Expr:
    """DML statements name one table; give every bare ref that binding."""
    if isinstance(expr, ast.ColumnRef):
        return ast.ColumnRef(binding, expr.column)
    if isinstance(expr, ast.BinaryOp):
        return ast.BinaryOp(
            expr.op,
            _qualify_to_binding(expr.left, binding),
            _qualify_to_binding(expr.right, binding),
        )
    if isinstance(expr, ast.UnaryOp):
        return ast.UnaryOp(expr.op, _qualify_to_binding(expr.operand, binding))
    if isinstance(expr, ast.IsNull):
        return ast.IsNull(_qualify_to_binding(expr.operand, binding), expr.negated)
    if isinstance(expr, ast.FuncCall):
        return ast.FuncCall(
            expr.name,
            tuple(_qualify_to_binding(a, binding) for a in expr.args),
            expr.star,
            expr.distinct,
        )
    if isinstance(expr, ast.InList):
        return ast.InList(
            _qualify_to_binding(expr.operand, binding),
            tuple(_qualify_to_binding(i, binding) for i in expr.items),
            expr.negated,
        )
    if isinstance(expr, ast.InSubquery):
        return ast.InSubquery(
            _qualify_to_binding(expr.operand, binding), expr.subquery, expr.negated
        )
    return expr


class DmlTransformer:
    """Executes logical DML through a layout's fragments."""

    def __init__(self, layout, schema: MultiTenantSchema) -> None:
        self.layout = layout
        self.schema = schema
        from .query import QueryTransformer

        self._queries = QueryTransformer(layout, schema)

    def _prepare_where(
        self, tenant_id: int, where: ast.Expr | None, params
    ) -> ast.Expr | None:
        """Inline parameters and transform IN-subqueries over logical
        tables into physical form."""
        if where is None:
            return None
        where = substitute_params(where, params)
        return self._queries.transform_predicate(tenant_id, where)

    @property
    def db(self):
        return self.layout.db

    # -- INSERT ------------------------------------------------------------

    def insert_values(
        self,
        tenant_id: int,
        table_name: str,
        values: dict,
        *,
        row_id: int | None = None,
    ) -> int:
        """Insert one logical row given a {column: value} mapping.

        Returns the allocated Row id (pass ``row_id`` to keep an existing
        identity, e.g. during migration).  Fan-out: one INSERT per
        fragment ("a single source DML statement generally has to be
        mapped into multiple statements over Chunk Tables").
        """
        logical = self.schema.logical_table(tenant_id, table_name)
        known = {c.lname for c in logical.columns}
        provided = {k.lower(): v for k, v in values.items()}
        unknown = set(provided) - known
        if unknown:
            raise UnknownObjectError(
                f"unknown columns {sorted(unknown)} for {table_name}"
            )
        # Type-check through the logical schema before fan-out.
        checked = {
            c.lname: c.type.check(provided.get(c.lname))
            for c in logical.columns
        }
        if row_id is None:
            row_id = self.layout.rows.allocate(tenant_id, table_name)
        else:
            self.layout.rows.observe(tenant_id, table_name, row_id)
        for fragment in self.layout.fragments(tenant_id, table_name):
            names: list[str] = []
            exprs: list[ast.Expr] = []
            for meta_col, value in fragment.meta:
                names.append(meta_col)
                exprs.append(ast.Literal(value))
            if fragment.row_column is not None:
                names.append(fragment.row_column)
                exprs.append(ast.Literal(row_id))
            if self.layout.soft_delete:
                names.append(ALIVE)
                exprs.append(ast.Literal(1))
            # Every fragment receives a row, NULL-padded where the
            # logical value is absent: reconstruction uses inner joins
            # on Row, so fragment rows must exist for every logical row.
            for logical_name, loc in fragment.columns:
                value = loc.write(checked.get(logical_name))
                names.append(loc.physical)
                exprs.append(ast.Literal(value))
            stmt = ast.Insert(fragment.table, tuple(names), (tuple(exprs),))
            self.db.execute_ast(stmt)
        return row_id

    def insert(self, tenant_id: int, stmt: ast.Insert, params=()) -> int:
        """Insert from a parsed logical INSERT statement."""
        logical = self.schema.logical_table(tenant_id, stmt.table)
        columns = (
            list(stmt.columns)
            if stmt.columns
            else [c.name for c in logical.columns]
        )
        compiler = ExprCompiler(Schema([]))
        count = 0
        for row_exprs in stmt.rows:
            if len(row_exprs) != len(columns):
                raise PlanError("INSERT arity mismatch")
            values = {
                name: compiler.compile(expr)((), params)
                for name, expr in zip(columns, row_exprs)
            }
            self.insert_values(tenant_id, stmt.table, values)
            count += 1
        return count

    # -- phase (a) ------------------------------------------------------------

    def _affected_rows(
        self,
        tenant_id: int,
        table_name: str,
        where: ast.Expr | None,
        extra_columns: list[str],
    ) -> list[dict]:
        """Collect affected Row ids plus requested column values."""
        binding = table_name.lower()
        where_columns = _column_refs(where) if where is not None else []
        needed = list(dict.fromkeys(where_columns + extra_columns))
        logical = self.schema.logical_table(tenant_id, table_name)
        for column in needed:
            logical.column(column)  # validates
        fragments = self.layout.fragments(tenant_id, table_name)
        recon = build_reconstruction(
            fragments,
            needed,
            binding,
            include_row=True,
            soft_delete=self.layout.soft_delete,
        )
        items = [
            ast.SelectItem(ast.ColumnRef(binding, ROW_ALIAS), ROW_ALIAS)
        ] + [ast.SelectItem(ast.ColumnRef(binding, c), c) for c in extra_columns]
        outer_where = (
            _qualify_to_binding(where, binding) if where is not None else None
        )
        select = ast.Select(
            items=tuple(items), sources=(recon,), where=outer_where
        )
        result = self.db.execute_ast(select)
        rows = []
        for values in result.rows:
            record = {ROW_ALIAS: values[0]}
            for name, value in zip(extra_columns, values[1:]):
                record[name] = value
            rows.append(record)
        return rows

    def _phase_a_subquery(
        self, tenant_id: int, table_name: str, where: ast.Expr | None
    ) -> ast.Select:
        binding = table_name.lower()
        where_columns = _column_refs(where) if where is not None else []
        fragments = self.layout.fragments(tenant_id, table_name)
        recon = build_reconstruction(
            fragments,
            where_columns,
            binding,
            include_row=True,
            soft_delete=self.layout.soft_delete,
        )
        outer_where = (
            _qualify_to_binding(where, binding) if where is not None else None
        )
        return ast.Select(
            items=(ast.SelectItem(ast.ColumnRef(binding, ROW_ALIAS), ROW_ALIAS),),
            sources=(recon,),
            where=outer_where,
        )

    # -- UPDATE -------------------------------------------------------------------

    def update(
        self,
        tenant_id: int,
        stmt: ast.Update,
        params=(),
        mode: UpdateMode = UpdateMode.BUFFERED,
    ) -> int:
        where = self._prepare_where(tenant_id, stmt.where, params)
        assignments = [
            (name.lower(), substitute_params(expr, params))
            for name, expr in stmt.assignments
        ]
        logical = self.schema.logical_table(tenant_id, stmt.table)
        for name, _ in assignments:
            logical.column(name)
        direct = self._direct_fragment(tenant_id, stmt.table)
        if direct is not None:
            return self._direct_update(direct, assignments, where)
        if mode is UpdateMode.SUBQUERY:
            return self._update_subquery(tenant_id, stmt.table, assignments, where)
        return self._update_buffered(tenant_id, stmt.table, assignments, where)

    # -- direct path (Private / Basic: one fragment, no Row column) -------------

    def _direct_fragment(self, tenant_id: int, table_name: str) -> Fragment | None:
        fragments = self.layout.fragments(tenant_id, table_name)
        if len(fragments) == 1 and fragments[0].row_column is None:
            return fragments[0]
        return None

    def _direct_where(
        self, fragment: Fragment, where: ast.Expr | None
    ) -> ast.Expr | None:
        column_map = fragment.column_map()
        predicate = self._fragment_meta_predicate(fragment)
        if where is not None:
            localized = self._localize(where, column_map)
            predicate = (
                localized
                if predicate is None
                else ast.BinaryOp("AND", predicate, localized)
            )
        if self.layout.soft_delete:
            live = ast.BinaryOp("=", ast.ColumnRef(None, ALIVE), ast.Literal(1))
            predicate = (
                live if predicate is None else ast.BinaryOp("AND", predicate, live)
            )
        return predicate

    def _direct_update(self, fragment: Fragment, assignments, where) -> int:
        column_map = fragment.column_map()
        sets = tuple(
            (column_map[name].physical, self._localize(expr, column_map))
            for name, expr in assignments
        )
        update = ast.Update(fragment.table, sets, self._direct_where(fragment, where))
        return self.db.execute_ast(update).rowcount

    def _direct_delete(self, fragment: Fragment, where) -> int:
        predicate = self._direct_where(fragment, where)
        if self.layout.soft_delete:
            statement: ast.Statement = ast.Update(
                fragment.table, ((ALIVE, ast.Literal(0)),), predicate
            )
        else:
            statement = ast.Delete(fragment.table, predicate)
        return self.db.execute_ast(statement).rowcount

    def _fragments_with(self, tenant_id: int, table_name: str, columns: set[str]):
        return [
            f
            for f in self.layout.fragments(tenant_id, table_name)
            if any(f.covers(c) for c in columns)
        ]

    def _update_buffered(
        self, tenant_id, table_name, assignments, where
    ) -> int:
        set_inputs = list(
            dict.fromkeys(
                c for _, expr in assignments for c in _column_refs(expr)
            )
        )
        affected = self._affected_rows(tenant_id, table_name, where, set_inputs)
        if not affected:
            return 0
        schema = Schema(
            [Slot(None, ROW_ALIAS)] + [Slot(None, c) for c in set_inputs]
        )
        compiler = ExprCompiler(schema)
        compiled = [(name, compiler.compile(expr)) for name, expr in assignments]
        targets = self._fragments_with(
            tenant_id, table_name, {name for name, _ in assignments}
        )
        count = 0
        for record in affected:
            row_tuple = tuple(record[k] for k in [ROW_ALIAS] + set_inputs)
            new_values = {name: fn(row_tuple, ()) for name, fn in compiled}
            for fragment in targets:
                column_map = fragment.column_map()
                sets = tuple(
                    (column_map[name].physical,
                     ast.Literal(column_map[name].write(value)))
                    for name, value in new_values.items()
                    if name in column_map
                )
                if not sets:
                    continue
                update = ast.Update(
                    fragment.table,
                    sets,
                    self._fragment_row_predicate(fragment, [record[ROW_ALIAS]]),
                )
                self.db.execute_ast(update)
            count += 1
        return count

    def _update_subquery(self, tenant_id, table_name, assignments, where) -> int:
        phase_a = self._phase_a_subquery(tenant_id, table_name, where)
        count = self.db.execute_ast(phase_a).rowcount
        if count == 0:
            return 0
        targets = self._fragments_with(
            tenant_id, table_name, {name for name, _ in assignments}
        )
        for fragment in targets:
            column_map = fragment.column_map()
            sets = []
            for name, expr in assignments:
                if name not in column_map:
                    continue
                sets.append(
                    (column_map[name].physical, self._localize(expr, column_map))
                )
            if not sets:
                continue
            predicate = self._fragment_meta_predicate(fragment)
            membership = ast.InSubquery(
                ast.ColumnRef(None, fragment.row_column), phase_a
            )
            predicate = (
                membership
                if predicate is None
                else ast.BinaryOp("AND", predicate, membership)
            )
            update = ast.Update(fragment.table, tuple(sets), predicate)
            self.db.execute_ast(update)
        return count

    def _localize(self, expr: ast.Expr, column_map) -> ast.Expr:
        """Rewrite logical column refs to one fragment's physical names;
        SUBQUERY mode requires SET expressions to stay fragment-local."""
        if isinstance(expr, ast.ColumnRef):
            name = expr.column.lower()
            if name not in column_map:
                raise PlanError(
                    f"SET expression references {name!r} outside the updated "
                    "fragment; use UpdateMode.BUFFERED"
                )
            return ast.ColumnRef(None, column_map[name].physical)
        if isinstance(expr, ast.BinaryOp):
            return ast.BinaryOp(
                expr.op,
                self._localize(expr.left, column_map),
                self._localize(expr.right, column_map),
            )
        if isinstance(expr, ast.UnaryOp):
            return ast.UnaryOp(expr.op, self._localize(expr.operand, column_map))
        if isinstance(expr, ast.IsNull):
            return ast.IsNull(self._localize(expr.operand, column_map), expr.negated)
        if isinstance(expr, ast.FuncCall):
            return ast.FuncCall(
                expr.name,
                tuple(self._localize(a, column_map) for a in expr.args),
                expr.star,
                expr.distinct,
            )
        if isinstance(expr, ast.InList):
            return ast.InList(
                self._localize(expr.operand, column_map),
                tuple(self._localize(i, column_map) for i in expr.items),
                expr.negated,
            )
        if isinstance(expr, ast.InSubquery):
            return ast.InSubquery(
                self._localize(expr.operand, column_map),
                expr.subquery,
                expr.negated,
            )
        return expr

    # -- DELETE ----------------------------------------------------------------------

    def delete(
        self,
        tenant_id: int,
        stmt: ast.Delete,
        params=(),
        mode: UpdateMode = UpdateMode.BUFFERED,
    ) -> int:
        where = self._prepare_where(tenant_id, stmt.where, params)
        direct = self._direct_fragment(tenant_id, stmt.table)
        if direct is not None:
            return self._direct_delete(direct, where)
        affected = self._affected_rows(tenant_id, stmt.table, where, [])
        if not affected:
            return 0
        row_ids = [record[ROW_ALIAS] for record in affected]
        fragments = self.layout.fragments(tenant_id, stmt.table)
        for fragment in fragments:
            for start in range(0, len(row_ids), IN_BATCH):
                batch = row_ids[start : start + IN_BATCH]
                predicate = self._fragment_row_predicate(fragment, batch)
                if self.layout.soft_delete:
                    # Trashcan: "mark the tuples as invisible instead of
                    # physically deleting them" — and a delete must mark
                    # *all* fragments, unlike a normal update.
                    statement: ast.Statement = ast.Update(
                        fragment.table,
                        ((ALIVE, ast.Literal(0)),),
                        predicate,
                    )
                else:
                    statement = ast.Delete(fragment.table, predicate)
                self.db.execute_ast(statement)
        return len(row_ids)

    def purge_trashcan(self, tenant_id: int, table_name: str) -> int:
        """Physically delete everything the Trashcan holds for one
        tenant's table; returns logical rows purged."""
        if not self.layout.soft_delete:
            raise PlanError("purge_trashcan requires soft_delete layouts")
        fragments = self.layout.fragments(tenant_id, table_name)
        purged = 0
        for i, fragment in enumerate(fragments):
            predicate = self._fragment_meta_predicate(fragment)
            dead = ast.BinaryOp("=", ast.ColumnRef(None, ALIVE), ast.Literal(0))
            predicate = (
                dead
                if predicate is None
                else ast.BinaryOp("AND", predicate, dead)
            )
            count = self.db.execute_ast(
                ast.Delete(fragment.table, predicate)
            ).rowcount
            if i == 0:
                purged = count
        return purged

    def restore(self, tenant_id: int, table_name: str, row_ids: list[int]) -> int:
        """Undo soft deletes (the Trashcan's purpose)."""
        if not self.layout.soft_delete:
            raise PlanError("restore requires soft_delete layouts")
        for fragment in self.layout.fragments(tenant_id, table_name):
            for start in range(0, len(row_ids), IN_BATCH):
                batch = row_ids[start : start + IN_BATCH]
                update = ast.Update(
                    fragment.table,
                    ((ALIVE, ast.Literal(1)),),
                    self._fragment_row_predicate(fragment, batch),
                )
                self.db.execute_ast(update)
        return len(row_ids)

    # -- predicates over fragments -------------------------------------------------

    @staticmethod
    def _fragment_meta_predicate(fragment: Fragment) -> ast.Expr | None:
        predicate: ast.Expr | None = None
        for meta_col, value in fragment.meta:
            conjunct = ast.BinaryOp(
                "=", ast.ColumnRef(None, meta_col), ast.Literal(value)
            )
            predicate = (
                conjunct
                if predicate is None
                else ast.BinaryOp("AND", predicate, conjunct)
            )
        return predicate

    def _fragment_row_predicate(
        self, fragment: Fragment, row_ids: list[int]
    ) -> ast.Expr:
        predicate = self._fragment_meta_predicate(fragment)
        if fragment.row_column is None:
            if predicate is None:
                raise PlanError(
                    f"fragment {fragment.table} has neither meta filters nor "
                    "row identity"
                )
            return predicate
        if len(row_ids) == 1:
            membership: ast.Expr = ast.BinaryOp(
                "=", ast.ColumnRef(None, fragment.row_column), ast.Literal(row_ids[0])
            )
        else:
            membership = ast.InList(
                ast.ColumnRef(None, fragment.row_column),
                tuple(ast.Literal(r) for r in row_ids),
            )
        if predicate is None:
            return membership
        return ast.BinaryOp("AND", predicate, membership)
