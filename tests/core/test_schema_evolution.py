"""Tests for online schema evolution: widening an extension while the
system runs (§6.3 ALTER bookkeeping) across every layout."""

import pytest

from repro import LogicalColumn
from repro.engine.errors import CatalogError, PlanError
from repro.engine.values import INTEGER, varchar

from .conftest import ALL_LAYOUTS, build_running_example

NEW_COLUMNS = (
    LogicalColumn("wards", INTEGER),
    LogicalColumn("director", varchar(40)),
)


class TestAlterExtension:
    @pytest.mark.parametrize("layout", ALL_LAYOUTS)
    def test_existing_rows_read_null(self, layout):
        mtd = build_running_example(layout)
        mtd.alter_extension("healthcare", NEW_COLUMNS)
        rows = mtd.execute(
            17, "SELECT aid, wards, director FROM account ORDER BY aid"
        ).rows
        assert rows == [(1, None, None), (2, None, None)]

    @pytest.mark.parametrize("layout", ALL_LAYOUTS)
    def test_new_inserts_carry_values(self, layout):
        mtd = build_running_example(layout)
        mtd.alter_extension("healthcare", NEW_COLUMNS)
        mtd.insert(
            17,
            "account",
            {"aid": 3, "name": "NewHosp", "wards": 12, "director": "dr. who"},
        )
        rows = mtd.execute(
            17, "SELECT wards, director FROM account WHERE aid = 3"
        ).rows
        assert rows == [(12, "dr. who")]

    @pytest.mark.parametrize("layout", ALL_LAYOUTS)
    def test_old_columns_untouched(self, layout):
        mtd = build_running_example(layout)
        before = sorted(
            mtd.execute(17, "SELECT aid, name, hospital, beds FROM account").rows
        )
        mtd.alter_extension("healthcare", NEW_COLUMNS)
        after = sorted(
            mtd.execute(17, "SELECT aid, name, hospital, beds FROM account").rows
        )
        assert before == after

    @pytest.mark.parametrize("layout", ALL_LAYOUTS)
    def test_updates_on_new_columns(self, layout):
        mtd = build_running_example(layout)
        mtd.alter_extension("healthcare", NEW_COLUMNS)
        count = mtd.execute(
            17, "UPDATE account SET wards = 5 WHERE aid = 1"
        ).rowcount
        assert count == 1
        assert mtd.execute(
            17, "SELECT wards FROM account WHERE aid = 1"
        ).rows == [(5,)]

    def test_unsubscribed_tenants_unaffected(self):
        mtd = build_running_example("chunk_folding")
        mtd.alter_extension("healthcare", NEW_COLUMNS)
        from repro.engine.errors import UnknownObjectError

        with pytest.raises(UnknownObjectError):
            mtd.execute(35, "SELECT wards FROM account")

    def test_generic_layout_needs_no_conventional_ddl(self):
        mtd = build_running_example("chunk_folding")
        ddl_before = mtd.db.catalog.ddl_statements
        base_columns_before = len(mtd.db.catalog.table("account_cf").columns)
        mtd.alter_extension("healthcare", NEW_COLUMNS)
        # The conventional base table is untouched; at most new chunk
        # tables were created.
        assert len(mtd.db.catalog.table("account_cf").columns) == (
            base_columns_before
        )
        assert mtd.db.catalog.has_table("account_cf")

    def test_collision_with_base_column_rejected(self):
        mtd = build_running_example("chunk")
        with pytest.raises(CatalogError):
            mtd.alter_extension(
                "healthcare", (LogicalColumn("name", INTEGER),)
            )

    def test_collision_with_own_column_rejected(self):
        mtd = build_running_example("chunk")
        with pytest.raises(CatalogError):
            mtd.alter_extension(
                "healthcare", (LogicalColumn("beds", INTEGER),)
            )

    def test_universal_overflow_rejected(self):
        mtd = build_running_example("universal", width=6)
        # base (3) + healthcare (2) = 5; two more columns overflow 6.
        with pytest.raises(PlanError):
            mtd.alter_extension("healthcare", NEW_COLUMNS)

    def test_alter_then_grant_to_new_tenant(self):
        mtd = build_running_example("chunk_folding")
        mtd.alter_extension("healthcare", NEW_COLUMNS)
        mtd.grant_extension(35, "healthcare")
        mtd.insert(
            35,
            "account",
            {"aid": 9, "name": "Late", "hospital": "H", "beds": 3, "wards": 1},
        )
        assert mtd.execute(
            35, "SELECT wards FROM account WHERE aid = 9"
        ).rows == [(1,)]

    def test_soft_delete_state_preserved_through_alter(self):
        mtd = build_running_example("chunk", soft_delete=True)
        mtd.execute(17, "DELETE FROM account WHERE aid = 1")
        mtd.alter_extension("healthcare", NEW_COLUMNS)
        # Trashed row stays trashed, live row readable with new column.
        assert mtd.execute(17, "SELECT COUNT(*) FROM account").rows == [(1,)]
        mtd.restore(17, "account", [0])
        rows = mtd.execute(
            17, "SELECT aid, wards FROM account ORDER BY aid"
        ).rows
        assert rows == [(1, None), (2, None)]

    def test_alter_after_migration_reaches_both_layouts(self):
        mtd = build_running_example("extension")
        mtd.migrate_tenant(17, "chunk")
        mtd.alter_extension("healthcare", NEW_COLUMNS)
        # Migrated tenant (chunk) and stay-behind tenant both work.
        assert mtd.execute(
            17, "SELECT wards FROM account WHERE aid = 1"
        ).rows == [(None,)]
        mtd.grant_extension(35, "healthcare")
        assert mtd.execute(35, "SELECT COUNT(*) FROM account").rows == [(1,)]
