"""On-the-fly migration between representations.

"Because these factors can vary over time, it should be possible to
migrate data from one representation to another on-the-fly."
(Sections 3 and 7.)

:class:`Migrator` moves one tenant's data from its current layout to a
target layout table-by-table, preserving Row ids so in-flight references
stay valid.  The :class:`~repro.core.api.MultiTenantDatabase` keeps a
per-tenant layout override map, so reads and writes follow the tenant to
its new representation immediately — other tenants are untouched.
"""

from __future__ import annotations

from ..engine.sql import ast
from .layouts.base import Layout
from .schema import MultiTenantSchema
from .transform.dml import DmlTransformer
from .transform.query import ROW_ALIAS, build_reconstruction


def read_tenant_rows(
    db, schema: MultiTenantSchema, layout: Layout, tenant_id: int, table_name: str
) -> tuple[list[str], bool, list[tuple]]:
    """Reconstruct every logical row of one tenant's table.

    Returns ``(column_names, has_row, rows)``: each row carries the
    logical column values in ``column_names`` order, followed by the
    Row id when ``has_row`` (layouts without a Row column — Private
    Tables — have no stored row identity).  Shared by the migrator, the
    cluster rebalancer's snapshot copy, and
    :meth:`~repro.core.api.MultiTenantDatabase.export_rows`.
    """
    logical = schema.logical_table(tenant_id, table_name)
    column_names = [c.lname for c in logical.columns]
    binding = table_name.lower()
    fragments = layout.fragments(tenant_id, table_name)
    has_row = fragments[0].row_column is not None
    recon = build_reconstruction(
        fragments,
        column_names,
        binding,
        include_row=has_row,
        soft_delete=layout.soft_delete,
    )
    items = [
        ast.SelectItem(ast.ColumnRef(binding, c), c) for c in column_names
    ]
    if has_row:
        items.append(
            ast.SelectItem(ast.ColumnRef(binding, ROW_ALIAS), ROW_ALIAS)
        )
    select = ast.Select(items=tuple(items), sources=(recon,))
    return column_names, has_row, db.execute(select.sql()).rows


class Migrator:
    """Copies tenants between layouts sharing one database + schema."""

    def __init__(self, schema: MultiTenantSchema) -> None:
        self.schema = schema

    def migrate_tenant(
        self, tenant_id: int, source: Layout, target: Layout
    ) -> dict[str, int]:
        """Move all of a tenant's rows; returns rows moved per table."""
        moved: dict[str, int] = {}
        target_dml = DmlTransformer(target, self.schema)
        for table in self.schema.tables():
            moved[table.name] = self._migrate_table(
                tenant_id, table.name, source, target, target_dml
            )
        return moved

    def _migrate_table(
        self,
        tenant_id: int,
        table_name: str,
        source: Layout,
        target: Layout,
        target_dml: DmlTransformer,
    ) -> int:
        column_names, has_row, rows = read_tenant_rows(
            source.db, self.schema, source, tenant_id, table_name
        )

        # Purge BEFORE re-inserting: source and target may share
        # physical structures (e.g. two chunk layouts of different
        # widths fold into the same ChunkIndex tables), and the rows
        # are already buffered above.
        self._purge_source(tenant_id, table_name, source)
        # The nastiest possible failure point: rows deleted from the
        # source but not yet written to the target.  The enclosing
        # admin-op bracket makes a crash here invisible after recovery.
        source.db.crashpoint("migrate.after_purge")

        count = 0
        for row in rows:
            values = dict(zip(column_names, row[: len(column_names)]))
            row_id = row[len(column_names)] if has_row else None
            target_dml.insert_values(
                tenant_id, table_name, values, row_id=row_id
            )
            count += 1
        return count

    def _purge_source(
        self, tenant_id: int, table_name: str, source: Layout
    ) -> None:
        """Physically remove the tenant's rows from the old fragments."""
        for fragment in source.fragments(tenant_id, table_name):
            predicate = None
            for meta_col, value in fragment.meta:
                conjunct = ast.BinaryOp(
                    "=", ast.ColumnRef(None, meta_col), ast.Literal(value)
                )
                predicate = (
                    conjunct
                    if predicate is None
                    else ast.BinaryOp("AND", predicate, conjunct)
                )
            if predicate is None and fragment.row_column is None:
                # Private tables: dropping is cheaper than deleting.
                source._drop_table(fragment.table)
                continue
            source.db.execute(ast.Delete(fragment.table, predicate).sql())
