"""Quickstart: the paper's running example (Figure 4).

Three tenants share one multi-tenant database.  Tenant 17 extends the
Account table for health care, tenant 42 for automotive, tenant 35 uses
the plain base table.  Chunk Folding maps the base columns to a
conventional shared table and folds the extensions into generic Chunk
Tables — and the query-transformation layer makes all of this invisible
to the tenants, who just issue SQL over "their" Account table.

Run:  python examples/quickstart.py
"""

from repro import Extension, LogicalColumn, LogicalTable, MultiTenantDatabase
from repro.engine.values import INTEGER, varchar


def main() -> None:
    mtd = MultiTenantDatabase(layout="chunk_folding", width=6)

    # -- the application's base schema -------------------------------------
    mtd.define_table(
        LogicalTable(
            "account",
            (
                LogicalColumn("aid", INTEGER, indexed=True, not_null=True),
                LogicalColumn("name", varchar(50)),
            ),
        )
    )

    # -- vertical-industry extensions ---------------------------------------
    mtd.define_extension(
        Extension(
            "healthcare",
            "account",
            (
                LogicalColumn("hospital", varchar(50)),
                LogicalColumn("beds", INTEGER),
            ),
        )
    )
    mtd.define_extension(
        Extension(
            "automotive", "account", (LogicalColumn("dealers", INTEGER),)
        )
    )

    # -- tenants -----------------------------------------------------------------
    mtd.create_tenant(17, extensions=("healthcare",))
    mtd.create_tenant(35)
    mtd.create_tenant(42, extensions=("automotive",))

    # -- data (Figure 4's rows) ----------------------------------------------------
    mtd.insert(17, "account", {"aid": 1, "name": "Acme",
                               "hospital": "St. Mary", "beds": 135})
    mtd.insert(17, "account", {"aid": 2, "name": "Gump",
                               "hospital": "State", "beds": 1042})
    mtd.insert(35, "account", {"aid": 1, "name": "Ball"})
    mtd.insert(42, "account", {"aid": 1, "name": "Big", "dealers": 65})

    # -- tenants query their own logical schema -------------------------------------
    print("Q1 for tenant 17 (the paper's example query):")
    print("  SELECT beds FROM account WHERE hospital = 'State'")
    result = mtd.execute(
        17, "SELECT beds FROM account WHERE hospital = ?", ["State"]
    )
    print(f"  -> {result.rows}")
    print()

    print("What the transformation layer actually sent to the database:")
    print(
        " ",
        mtd.transform_sql(
            17, "SELECT beds FROM account WHERE hospital = 'State'"
        ),
    )
    print()

    print("Tenant 42 sees a different Account table:")
    result = mtd.execute(42, "SELECT * FROM account")
    print(f"  columns: {result.columns}")
    print(f"  rows:    {result.rows}")
    print()

    print("Tenant 35 cannot see anyone's extensions:")
    result = mtd.execute(35, "SELECT COUNT(*) FROM account")
    print(f"  own account count: {result.rows[0][0]}")
    print()

    # -- extensions are granted online (no DDL on conventional tables) ---------------
    mtd.grant_extension(35, "automotive")
    mtd.insert(35, "account", {"aid": 2, "name": "Wheels", "dealers": 3})
    result = mtd.execute(35, "SELECT name, dealers FROM account WHERE aid = 2")
    print(f"After granting 'automotive' to tenant 35 online: {result.rows}")
    print()

    # -- what the physical database looks like -----------------------------------------
    print("Physical schema (conventional + folded Chunk Tables):")
    for table in mtd.db.catalog.tables():
        print(f"  {table.name}: {table.row_count} rows")
    print()
    for line in mtd.report().lines():
        print(" ", line)


if __name__ == "__main__":
    main()
