"""Lock/transaction stress: interleaved workers, no lost updates.

The engine supports one open transaction at a time (§4.2: a transaction
spans at most one user request), so concurrency is modelled the way the
testbed does it — workers take turns running complete transactions
against shared rows while the lock table accounts conflicts and waits.
The invariants: read-modify-write increments are never lost, rolled-back
work leaves no trace, and every lock metric is non-negative and
monotonically non-decreasing across the whole run.
"""


import pytest

from repro.engine import Database


WORKERS = 4
ROUNDS = 30
ROWS = 3


@pytest.fixture()
def db():
    database = Database()
    database.execute(
        "CREATE TABLE counters (id INTEGER NOT NULL, value INTEGER NOT NULL)"
    )
    database.execute("CREATE UNIQUE INDEX counters_pk ON counters (id)")
    for row_id in range(ROWS):
        database.execute("INSERT INTO counters VALUES (?, ?)", [row_id, 0])
    return database


def read_value(db, row_id):
    return db.execute(
        "SELECT value FROM counters WHERE id = ?", [row_id]
    ).scalar()


class TestInterleavedTransactions:
    def test_no_lost_updates(self, db, replay_rng):
        """Round-robin read-modify-write increments; every committed
        increment must be visible in the final state, every rolled-back
        one must not."""
        rng = replay_rng
        committed = {row_id: 0 for row_id in range(ROWS)}
        snapshots = []
        for round_no in range(ROUNDS):
            for worker in range(WORKERS):
                row_id = rng.randrange(ROWS)
                db.execute("BEGIN")
                # Lock accounting mirrors the testbed: an exclusive
                # row lock per writer; overlap with other workers'
                # most recent footprint counts as conflicts.
                conflicts = db.locks.acquire(
                    worker, ("rows", "counters", row_id), exclusive=True
                )
                if conflicts:
                    db.locks.record_wait(conflicts, conflicts * 2.5)
                current = read_value(db, row_id)
                db.execute(
                    "UPDATE counters SET value = ? WHERE id = ?",
                    [current + 1, row_id],
                )
                if rng.random() < 0.25:
                    db.execute("ROLLBACK")
                else:
                    db.execute("COMMIT")
                    committed[row_id] += 1
                db.locks.release_session(worker)
                snapshots.append(db.locks.stats.snapshot())
        for row_id in range(ROWS):
            assert read_value(db, row_id) == committed[row_id]

        # Lock metrics: non-negative, monotonic across the run.
        previous = None
        for snap in snapshots:
            assert snap.acquisitions >= 0
            assert snap.conflicts >= 0
            assert snap.waits >= 0
            assert snap.wait_ms >= 0.0
            if previous is not None:
                delta = snap.delta(previous)
                assert delta.acquisitions >= 0
                assert delta.conflicts >= 0
                assert delta.waits >= 0
                assert delta.wait_ms >= 0.0
            previous = snap
        final = snapshots[-1]
        assert final.acquisitions == WORKERS * ROUNDS
        assert final.waits <= final.conflicts

    def test_registry_mirrors_lock_ledger(self, db):
        """locks.* registry counters stay in lockstep with LockStats."""
        for worker in range(WORKERS):
            db.locks.acquire(worker, ("table", "counters"), exclusive=True)
        db.locks.record_wait(2, 7.0)
        stats = db.locks.stats
        assert db.metrics.value("locks.acquisitions") == stats.acquisitions
        assert db.metrics.value("locks.conflicts") == stats.conflicts
        assert db.metrics.value("locks.waits") == stats.waits
        assert db.metrics.value("locks.wait_ms") == pytest.approx(
            stats.wait_ms
        )
        histogram = db.metrics.histogram("locks.wait_duration_ms")
        assert histogram.count == 1
        assert histogram.mean == pytest.approx(3.5)

    def test_record_wait_rejects_negative(self, db):
        with pytest.raises(ValueError):
            db.locks.record_wait(-1, 0.0)
        with pytest.raises(ValueError):
            db.locks.record_wait(1, -0.5)

    def test_rollback_storm_preserves_consistency(self, db):
        """Alternating commit/rollback across workers sharing one row:
        the value advances exactly once per committed transaction even
        when every other transaction aborts mid-flight."""
        for iteration in range(20):
            worker = iteration % WORKERS
            db.execute("BEGIN")
            db.locks.acquire(worker, ("rows", "counters", 0), exclusive=True)
            current = read_value(db, 0)
            db.execute(
                "UPDATE counters SET value = ? WHERE id = ?", [current + 1, 0]
            )
            db.execute("ROLLBACK" if iteration % 2 else "COMMIT")
            db.locks.release_session(worker)
        assert read_value(db, 0) == 10
        assert db.transactions.committed == 10
        assert db.transactions.rolled_back == 10
        assert db.metrics.value("txn.committed") == 10
        assert db.metrics.value("txn.rolled_back") == 10
