"""A log-structured disk page store.

Each segment (one heap file or B-tree) owns an append-only file of
CRC-framed page images (``seg_<id>.pages``).  Writing a page appends a
new version stamped with the WAL LSN current when the page was last
dirtied; the in-memory index tracks the latest version of every page,
so reads are one seek.  Old versions accumulate until a checkpoint
compacts the files; recovery instead *truncates* to the checkpoint LSN,
discarding every version written after the snapshot being restored.

Page payloads are Python objects (heap slot lists, B-tree nodes) —
serialization goes through the same pickle+CRC framing as the WAL, so a
torn page write from a crash is detected by checksum and simply ends
that file's readable prefix.
"""

from __future__ import annotations

import os
import re
from typing import Iterable

from ..errors import EngineError
from ..pager import Page, PageKind
from .codec import HEADER_SIZE, decode_frames, encode_frame
from .faults import FaultInjector, SimulatedCrash

_SEGMENT_FILE = re.compile(r"^seg_(\d+)\.pages$")


def _segment_filename(segment_id: int) -> str:
    return f"seg_{segment_id:06d}.pages"


class DiskPageStore:
    """Versioned page images in per-segment append files."""

    def __init__(
        self,
        directory: str,
        *,
        metrics=None,
        faults: FaultInjector | None = None,
    ) -> None:
        self.directory = directory
        os.makedirs(directory, exist_ok=True)
        self._faults = faults or FaultInjector()
        self._metrics = metrics
        if metrics is not None:
            self._c_page_writes = metrics.counter("db.pager.page_writes")
            self._c_page_reads = metrics.counter("db.pager.page_reads")
            self._c_bytes_written = metrics.counter("db.pager.bytes_written")
            self._c_bytes_read = metrics.counter("db.pager.bytes_read")
            self._c_fsyncs = metrics.counter("db.pager.fsyncs")
        #: page_id -> (segment_id, offset, frame_length, lsn) of the
        #: latest version.
        self._index: dict[int, tuple[int, int, int, int]] = {}
        #: segment_id -> valid byte length of its file.
        self._sizes: dict[int, int] = {}
        self._files: dict[int, object] = {}
        self._scan()

    # -- startup ----------------------------------------------------------

    def _segment_path(self, segment_id: int) -> str:
        return os.path.join(self.directory, _segment_filename(segment_id))

    def _scan(self) -> None:
        """Index every valid frame; truncate torn tails so appends
        always extend a readable file."""
        for name in sorted(os.listdir(self.directory)):
            match = _SEGMENT_FILE.match(name)
            if match is None:
                continue
            segment_id = int(match.group(1))
            path = os.path.join(self.directory, name)
            with open(path, "rb") as fh:
                data = fh.read()
            valid_end = 0
            for offset, record in decode_frames(data):
                frame_length = HEADER_SIZE + int.from_bytes(
                    data[offset : offset + 4], "little"
                )
                valid_end = offset + frame_length
                self._record_version(
                    record["page_id"], segment_id, offset, frame_length,
                    record["lsn"],
                )
            if valid_end < len(data):
                with open(path, "r+b") as fh:
                    fh.truncate(valid_end)
            self._sizes[segment_id] = valid_end

    def _record_version(
        self, page_id: int, segment_id: int, offset: int, length: int, lsn: int
    ) -> None:
        current = self._index.get(page_id)
        # Later offsets in the same file are strictly newer; a page
        # never moves between segments.
        if current is None or offset >= current[1]:
            self._index[page_id] = (segment_id, offset, length, lsn)

    # -- handles ----------------------------------------------------------

    def _handle(self, segment_id: int):
        fh = self._files.get(segment_id)
        if fh is None:
            path = self._segment_path(segment_id)
            fh = open(path, "r+b" if os.path.exists(path) else "w+b")
            self._files[segment_id] = fh
            self._sizes.setdefault(segment_id, os.path.getsize(path))
        return fh

    # -- write / read -----------------------------------------------------

    def write(self, page: Page, lsn: int) -> None:
        """Append a new version of ``page``.  The write reaches the OS
        immediately (process-kill durability); fsync happens at
        checkpoints via :meth:`sync`."""
        record = {
            "page_id": page.page_id,
            "lsn": lsn,
            "segment": page.segment_id,
            "kind": page.kind.value,
            "size": page.size,
            "used": page.used,
            "payload": page.payload,
        }
        frame = encode_frame(record)
        fh = self._handle(page.segment_id)
        offset = self._sizes.get(page.segment_id, 0)
        fh.seek(offset)
        torn = self._faults.torn_write_length(len(frame))
        if torn is not None:
            fh.write(frame[:torn])
            fh.flush()
            raise SimulatedCrash(
                f"torn page write: {torn}/{len(frame)} bytes of page "
                f"{page.page_id} reached disk"
            )
        fh.write(frame)
        fh.flush()
        self._sizes[page.segment_id] = offset + len(frame)
        self._record_version(
            page.page_id, page.segment_id, offset, len(frame), lsn
        )
        if self._metrics is not None:
            self._c_page_writes.inc()
            self._c_bytes_written.inc(len(frame))

    def read(self, page_id: int) -> Page:
        loc = self._index.get(page_id)
        if loc is None:
            raise EngineError(f"page {page_id} does not exist")
        segment_id, offset, length, _lsn = loc
        fh = self._handle(segment_id)
        fh.seek(offset)
        data = fh.read(length)
        decoded = next(iter(decode_frames(data)), None)
        if decoded is None:
            raise EngineError(f"page {page_id}: corrupt frame on disk")
        _, record = decoded
        if self._metrics is not None:
            self._c_page_reads.inc()
            self._c_bytes_read.inc(length)
        page = Page(
            page_id=record["page_id"],
            segment_id=record["segment"],
            kind=PageKind(record["kind"]),
            size=record["size"],
            used=record["used"],
            payload=record["payload"],
        )
        page.lsn = record["lsn"]
        return page

    # -- membership -------------------------------------------------------

    def contains(self, page_id: int) -> bool:
        return page_id in self._index

    def page_ids(self) -> set[int]:
        return set(self._index)

    def pages_in_segment(self, segment_id: int) -> set[int]:
        return {
            pid for pid, loc in self._index.items() if loc[0] == segment_id
        }

    def free_segment(self, segment_id: int) -> int:
        """Drop a segment's file (DROP TABLE/INDEX).  Returns the number
        of latest-version pages it held."""
        doomed = [
            pid for pid, loc in self._index.items() if loc[0] == segment_id
        ]
        for pid in doomed:
            del self._index[pid]
        fh = self._files.pop(segment_id, None)
        if fh is not None:
            fh.close()
        self._sizes.pop(segment_id, None)
        path = self._segment_path(segment_id)
        if os.path.exists(path):
            os.remove(path)
        return len(doomed)

    # -- durability -------------------------------------------------------

    def sync(self) -> None:
        """fsync every open segment file (checkpoint barrier)."""
        for fh in self._files.values():
            fh.flush()
            os.fsync(fh.fileno())
            if self._metrics is not None:
                self._c_fsyncs.inc()

    # -- version management -----------------------------------------------

    def truncate_to(self, cutoff_lsn: int) -> None:
        """Keep, per page, only the newest version with
        ``lsn <= cutoff_lsn``; physically discard everything else.
        Recovery uses this to roll the store back to the state the
        checkpoint snapshot describes."""
        self._rewrite(lambda lsn: lsn <= cutoff_lsn)

    def compact(self) -> None:
        """Keep only the latest version of every page (checkpoint GC)."""
        self._rewrite(lambda lsn: True)

    def _rewrite(self, keep) -> None:
        segment_ids = set(self._sizes)
        for name in os.listdir(self.directory):
            match = _SEGMENT_FILE.match(name)
            if match is not None:
                segment_ids.add(int(match.group(1)))
        self._index.clear()
        for segment_id in sorted(segment_ids):
            path = self._segment_path(segment_id)
            if not os.path.exists(path):
                self._sizes.pop(segment_id, None)
                continue
            fh = self._files.pop(segment_id, None)
            if fh is not None:
                fh.close()
            with open(path, "rb") as src:
                data = src.read()
            best: dict[int, dict] = {}
            for _offset, record in decode_frames(data):
                if keep(record["lsn"]):
                    best[record["page_id"]] = record
            if not best:
                os.remove(path)
                self._sizes.pop(segment_id, None)
                continue
            tmp = path + ".tmp"
            offset = 0
            locations: list[tuple[int, int, int, int]] = []
            with open(tmp, "wb") as dst:
                for record in best.values():
                    frame = encode_frame(record)
                    dst.write(frame)
                    locations.append(
                        (record["page_id"], offset, len(frame), record["lsn"])
                    )
                    offset += len(frame)
                dst.flush()
                os.fsync(dst.fileno())
            os.replace(tmp, path)
            self._sizes[segment_id] = offset
            for page_id, off, length, lsn in locations:
                self._index[page_id] = (segment_id, off, length, lsn)

    def segment_ids(self) -> Iterable[int]:
        return set(self._sizes)

    def close(self) -> None:
        for fh in self._files.values():
            fh.close()
        self._files.clear()
