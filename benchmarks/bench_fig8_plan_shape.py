"""Figure 8 — join plan for the simple fragment query.

Plans Q2 (scale 3) over the width-6 Chunk Table layout and checks the
plan exhibits the figure's structure:

* region 1/2 — both ChunkIndex accesses are constant-keyed IXSCANs
  (the selective ``p.id = ?`` predicate is pushed into the chunk
  representing the child's foreign key, via transitive equality),
* region 3 — a HSJOIN implements the value-based foreign-key join,
* regions 4/5 — NLJOIN chains align the data chunks on Row through the
  ``tcr`` meta-data index.
"""

import pytest

from repro.engine.explain import count_operators, plan_shape, render_plan
from repro.experiments.chunkqueries import TENANT, q2_sql


@pytest.fixture(scope="module")
def experiment(pool):
    return pool.experiment("chunk6")


@pytest.fixture(scope="module")
def plan(experiment):
    return experiment.mtd.db.plan(
        experiment.mtd.transform_sql(TENANT, q2_sql(3))
    )


class TestFigure8:
    def test_report(self, benchmark, experiment, plan, report):
        benchmark.pedantic(render_plan, args=(plan,), rounds=2)
        report(
            "fig8_plan",
            "Figure 8: Join plan for simple fragment query "
            "(Q2 scale 3 on Chunk6)\n\n" + render_plan(plan),
        )

    def test_report_analyzed(self, experiment, report):
        """The same plan annotated with measured per-operator rows and
        times (EXPLAIN ANALYZE over the chunk-folding layout)."""
        trace = experiment.trace(3)
        assert trace.plan is not None
        report(
            "fig8_plan_analyzed",
            "Figure 8 (analyzed): measured operator tree "
            "(Q2 scale 3 on Chunk6)\n\n" + trace.plan,
        )
        for token in ("rows=", "opens=", "time="):
            assert token in trace.plan

    def test_hash_join_in_the_middle(self, plan):
        assert count_operators(plan, "HSJOIN") == 1

    def test_nljoin_chains_for_data_chunks(self, plan):
        assert count_operators(plan, "NLJOIN") >= 2

    def test_all_access_via_indexes(self, plan):
        assert count_operators(plan, "TBSCAN") == 0
        assert count_operators(plan, "IXSCAN") == 4

    def test_constant_pushed_to_both_chunkindex_scans(self, plan):
        text = render_plan(plan)
        assert text.count("int1 = ?") == 2  # parent id AND child FK chunk

    def test_index_only_chunkindex_access(self, plan):
        text = render_plan(plan)
        assert "index-only" in text

    def test_fetches_only_for_data_chunks(self, plan):
        text = render_plan(plan)
        assert text.count("FETCH") == 2

    def test_query_answers_correctly(self, experiment):
        rows = experiment.mtd.execute(TENANT, q2_sql(3), [1]).rows
        assert len(rows) == experiment.config.children_per_parent

    def test_benchmark_planning_time(self, benchmark, experiment):
        sql = experiment.mtd.transform_sql(TENANT, q2_sql(3))

        def plan_it():
            return experiment.mtd.db.plan(sql)

        root = benchmark(plan_it)
        assert plan_shape(root).startswith("RETURN")
