"""CLI: ``python -m repro.quality`` — run the optimizer-quality harness.

Examples::

    python -m repro.quality                      # full report, all layouts
    python -m repro.quality --layouts conventional --gate
    python -m repro.quality --seeds 30 --budget 32 --no-feedback
"""

from __future__ import annotations

import argparse
import json
import os
import sys

from .harness import HarnessConfig, all_layouts, run_harness
from .report import evaluate_gate, render_report, report_to_json

DEFAULT_OUTPUT = os.path.join(
    "benchmarks", "results", "BENCH_optimizer_quality.json"
)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.quality",
        description="Plan-space enumeration: chosen-vs-best per layout.",
    )
    parser.add_argument(
        "--seeds", type=int, default=15,
        help="corpus size: generator seeds 0..N-1 (default 15)",
    )
    parser.add_argument(
        "--budget", type=int, default=24,
        help="max distinct plans enumerated per query (default 24)",
    )
    parser.add_argument(
        "--layouts", default="",
        help="comma-separated layout names "
        f"(default: all of {','.join(all_layouts())})",
    )
    parser.add_argument(
        "--no-feedback", action="store_true",
        help="disable cardinality feedback (measure the static model)",
    )
    parser.add_argument(
        "--gate", action="store_true",
        help="evaluate the optimal-plan-rate gate on the conventional "
        "layout; exit 1 on failure",
    )
    parser.add_argument(
        "--output", default=DEFAULT_OUTPUT,
        help=f"JSON results path (default {DEFAULT_OUTPUT}); "
        "'-' to skip writing",
    )
    args = parser.parse_args(argv)

    layouts = tuple(
        name.strip() for name in args.layouts.split(",") if name.strip()
    )
    unknown = set(layouts) - set(all_layouts())
    if unknown:
        parser.error(f"unknown layouts: {sorted(unknown)}")
    config = HarnessConfig(
        seeds=tuple(range(args.seeds)),
        budget=args.budget,
        layouts=layouts,
        feedback=not args.no_feedback,
    )
    outcomes = run_harness(config)
    gate = None
    if args.gate:
        gate = evaluate_gate(outcomes)
    print(render_report(outcomes, gate))

    if args.output != "-":
        payload = report_to_json(
            outcomes,
            gate,
            config={
                "seeds": args.seeds,
                "budget": args.budget,
                "layouts": list(layouts) or all_layouts(),
                "feedback": not args.no_feedback,
            },
        )
        os.makedirs(os.path.dirname(args.output) or ".", exist_ok=True)
        with open(args.output, "w") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"results written to {args.output}")

    if gate is not None and not gate.passed:
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
