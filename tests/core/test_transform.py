"""Tests for the §6.1 query transformation: reconstruction shape,
flattening, and predicate ordering."""

import pytest

from repro import PredicateOrder
from repro.core.transform.flatten import (
    flatten_transformed,
    is_metadata_predicate,
    order_predicates,
)
from repro.core.transform.query import build_reconstruction
from repro.core.layouts.base import ColumnLoc, Fragment
from repro.engine.errors import UnknownObjectError
from repro.engine.sql import ast
from repro.engine.sql.parser import parse_statement
from repro.engine.plan.logical import split_conjuncts

from .conftest import build_running_example


def pivot_fragments():
    """Hand-built Pivot fragments mirroring Figure 4(d) for tenant 17."""

    def fragment(table, col_id, logical, physical="val"):
        return Fragment(
            table=table,
            meta=(("tenant", 17), ("tbl", 0), ("col", col_id)),
            columns=((logical, ColumnLoc(physical)),),
            row_column="row",
        )

    return [
        fragment("pivot_int", 0, "aid"),
        fragment("pivot_str", 1, "name"),
        fragment("pivot_str", 2, "hospital"),
        fragment("pivot_int", 3, "beds"),
    ]


class TestBuildReconstruction:
    def test_only_used_fragments_join(self):
        """Query Q1 uses Hospital and Beds: exactly two fragments, one
        aligning join (the paper's Q1_Account17)."""
        source = build_reconstruction(
            pivot_fragments(), ["hospital", "beds"], "account17"
        )
        select = source.select
        assert len(select.sources) == 2
        conjuncts = split_conjuncts(select.where)
        # 3 meta predicates per fragment + 1 row-aligning join.
        assert len(conjuncts) == 7
        row_joins = [
            c
            for c in conjuncts
            if isinstance(c.left, ast.ColumnRef)
            and isinstance(c.right, ast.ColumnRef)
        ]
        assert len(row_joins) == 1

    def test_all_columns_needs_n_minus_1_joins(self):
        """Reconstructing an n-column table takes (n-1) aligning joins."""
        source = build_reconstruction(
            pivot_fragments(), ["aid", "name", "hospital", "beds"], "a"
        )
        conjuncts = split_conjuncts(source.select.where)
        row_joins = [
            c
            for c in conjuncts
            if isinstance(c.left, ast.ColumnRef)
            and isinstance(c.right, ast.ColumnRef)
        ]
        assert len(row_joins) == 3

    def test_no_used_columns_anchors_single_fragment(self):
        source = build_reconstruction(pivot_fragments(), [], "a")
        assert len(source.select.sources) == 1

    def test_unknown_column_raises(self):
        with pytest.raises(UnknownObjectError):
            build_reconstruction(pivot_fragments(), ["missing"], "a")

    def test_include_row_exposes_row_alias(self):
        source = build_reconstruction(
            pivot_fragments(), ["beds"], "a", include_row=True
        )
        names = [item.alias for item in source.select.items]
        assert "__row" in names

    def test_output_is_flat_and_conjunctive(self):
        """Step 3 guarantee: 'resulting queries are all flat and consist
        of conjunctive predicates only' — so rule N8 applies."""
        source = build_reconstruction(
            pivot_fragments(), ["aid", "beds"], "a"
        )
        select = source.select
        assert all(isinstance(s, ast.TableSource) for s in select.sources)
        for conjunct in split_conjuncts(select.where):
            assert isinstance(conjunct, ast.BinaryOp)
            assert conjunct.op == "="

    def test_sql_text_reparses(self):
        source = build_reconstruction(
            pivot_fragments(), ["hospital", "beds"], "a"
        )
        reparsed = parse_statement(source.select.sql())
        assert isinstance(reparsed, ast.Select)


class TestTransformedSql:
    def test_paper_example_chunk(self):
        """The Q1^Chunk example: both requested columns reside in the
        same chunk, so the FROM clause is a single chunk table."""
        mtd = build_running_example("chunk_folding")
        sql = mtd.transform_sql(
            17, "SELECT beds FROM account WHERE hospital = 'State'"
        )
        assert sql.count("FROM chunk_") == 1
        assert "tenant = 17" in sql
        assert "AS beds" in sql.lower() or "as beds" in sql.lower()

    def test_private_rename_only(self):
        """Private layout: 'the query-transformation layer needs only to
        rename tables'."""
        mtd = build_running_example("private")
        sql = mtd.transform_sql(17, "SELECT beds FROM account")
        assert "account_t17" in sql

    def test_unknown_tenant_rejected(self):
        mtd = build_running_example("chunk")
        with pytest.raises(UnknownObjectError):
            mtd.execute(99, "SELECT 1 FROM account")

    def test_subquery_in_where_is_transformed(self):
        mtd = build_running_example("chunk_folding")
        result = mtd.execute(
            17,
            "SELECT name FROM account WHERE aid IN "
            "(SELECT a.aid FROM account a WHERE a.beds > 1000)",
        )
        assert result.rows == [("Gump",)]

    def test_logical_from_subquery(self):
        mtd = build_running_example("chunk_folding")
        result = mtd.execute(
            17,
            "SELECT d.n FROM (SELECT COUNT(*) AS n FROM account) AS d",
        )
        assert result.rows == [(2,)]


class TestFlattening:
    def test_flatten_produces_single_block(self):
        mtd = build_running_example("pivot")
        nested_sql = mtd.transform_sql(
            17, "SELECT beds FROM account WHERE hospital = 'State'"
        )
        stmt = parse_statement(nested_sql)
        flat = flatten_transformed(stmt, mtd._physical_lookup)
        assert all(isinstance(s, ast.TableSource) for s in flat.sources)

    def test_flattened_query_same_answer(self):
        mtd = build_running_example("pivot")
        stmt = parse_statement(
            mtd.transform_sql(17, "SELECT beds FROM account WHERE hospital = 'State'")
        )
        flat = flatten_transformed(stmt, mtd._physical_lookup)
        assert mtd.db.execute(flat.sql()).rows == [(1042,)]

    def test_metadata_predicate_detection(self):
        meta = parse_statement(
            "SELECT x FROM t WHERE t.tenant = 17 AND t.chunk = 1"
        ).where
        for conjunct in split_conjuncts(meta):
            assert is_metadata_predicate(conjunct)
        user = parse_statement("SELECT x FROM t WHERE t.str1 = 'State'").where
        assert not is_metadata_predicate(user)

    def test_order_predicates_metadata_first(self):
        stmt = parse_statement(
            "SELECT a.x FROM t a WHERE a.str1 = 'v' AND a.tenant = 17"
        )
        ordered = order_predicates(stmt, PredicateOrder.METADATA_FIRST)
        conjuncts = split_conjuncts(ordered.where)
        assert is_metadata_predicate(conjuncts[0])
        assert not is_metadata_predicate(conjuncts[1])

    def test_order_predicates_original_first(self):
        stmt = parse_statement(
            "SELECT a.x FROM t a WHERE a.tenant = 17 AND a.str1 = 'v'"
        )
        ordered = order_predicates(stmt, PredicateOrder.ORIGINAL_FIRST)
        conjuncts = split_conjuncts(ordered.where)
        assert not is_metadata_predicate(conjuncts[0])

    def test_as_generated_is_identity(self):
        stmt = parse_statement("SELECT a.x FROM t a WHERE a.tenant = 17")
        assert order_predicates(stmt, PredicateOrder.AS_GENERATED) is stmt
