"""Section 6.2, Test 1 — transformation and nesting.

The transformed (nested) query is fed to both optimizer profiles:

* the ADVANCED profile (DB2-like) unnests it — no materialization, the
  selective predicate is pushed into the chunk accesses;
* the SIMPLE profile (MySQL-like) materializes the reconstruction
  before filtering — a measurable penalty — and, on the flattened form,
  its plan follows textual predicate order: putting the original
  query's predicates before the meta-data predicates outperforms the
  reverse ordering (the paper measured a factor of 5).
"""

import pytest

from repro import PredicateOrder
from repro.engine.explain import plan_shape
from repro.engine.optimizer import OptimizerProfile
from repro.experiments.chunkqueries import TENANT, q2_sql
from repro.experiments.report import render_table


@pytest.fixture(scope="module")
def experiment(pool):
    return pool.experiment("chunk6")


def measure_logical_reads(experiment, sql_text, params):
    db = experiment.mtd.db
    db.execute(sql_text, params)  # warm
    before = db.pool_stats.snapshot()
    exec_before = db.exec_stats.snapshot()
    db.execute(sql_text, params)
    pool_delta = db.pool_stats.delta(before)
    ms = experiment.cost_model.response_ms(
        pool_delta, db.exec_stats.delta(exec_before)
    )
    return pool_delta.logical_total, ms


class TestNesting:
    def test_advanced_unnests(self, experiment):
        experiment.mtd.db.profile = OptimizerProfile.ADVANCED
        sql = experiment.mtd.transform_sql(TENANT, q2_sql(3))
        shape = plan_shape(experiment.mtd.db.plan(sql))
        assert "MATERIALIZE" not in shape

    def test_simple_cannot_unnest(self, experiment):
        db = experiment.mtd.db
        db.profile = OptimizerProfile.ADVANCED
        nested = experiment.mtd.transform_sql(TENANT, q2_sql(3))
        db.profile = OptimizerProfile.SIMPLE
        try:
            shape = plan_shape(db.plan(nested))
        finally:
            db.profile = OptimizerProfile.ADVANCED
        assert "MATERIALIZE" in shape

    def test_materialization_penalty(self, benchmark, experiment, report):
        db = experiment.mtd.db
        db.profile = OptimizerProfile.ADVANCED
        nested = experiment.mtd.transform_sql(TENANT, q2_sql(3))
        advanced_reads, advanced_ms = measure_logical_reads(
            experiment, nested, [1]
        )
        db.profile = OptimizerProfile.SIMPLE
        simple_reads, simple_ms = benchmark.pedantic(
            measure_logical_reads, args=(experiment, nested, [1]), rounds=2
        )
        db.profile = OptimizerProfile.ADVANCED
        report(
            "test1_nesting",
            render_table(
                "Test 1: nested transformed query, by optimizer profile",
                ["profile", "logical reads", "sim ms"],
                [
                    ("ADVANCED (unnests)", advanced_reads, round(advanced_ms, 2)),
                    ("SIMPLE (materializes)", simple_reads, round(simple_ms, 2)),
                ],
            ),
        )
        assert simple_reads > advanced_reads * 2


class TestPredicateOrder:
    """Flattened queries on the SIMPLE profile: predicate order matters."""

    @pytest.fixture(scope="class")
    def flat_queries(self, experiment):
        mtd = experiment.mtd
        mtd.db.profile = OptimizerProfile.SIMPLE
        queries = {}
        for order in (PredicateOrder.ORIGINAL_FIRST, PredicateOrder.METADATA_FIRST):
            mtd.predicate_order = order
            queries[order] = mtd.transform_sql(TENANT, q2_sql(3))
        mtd.db.profile = OptimizerProfile.ADVANCED
        mtd.predicate_order = PredicateOrder.ORIGINAL_FIRST
        return queries

    def test_orderings_agree_on_answers(self, experiment, flat_queries):
        db = experiment.mtd.db
        db.profile = OptimizerProfile.SIMPLE
        try:
            results = {
                order: sorted(db.execute(sql, [2]).rows)
                for order, sql in flat_queries.items()
            }
        finally:
            db.profile = OptimizerProfile.ADVANCED
        first, second = results.values()
        assert first == second

    def test_original_first_outperforms_metadata_first(
        self, benchmark, experiment, flat_queries, report
    ):
        db = experiment.mtd.db
        db.profile = OptimizerProfile.SIMPLE
        try:
            good_reads, good_ms = measure_logical_reads(
                experiment, flat_queries[PredicateOrder.ORIGINAL_FIRST], [2]
            )
            bad_reads, bad_ms = benchmark.pedantic(
                measure_logical_reads,
                args=(experiment, flat_queries[PredicateOrder.METADATA_FIRST], [2]),
                rounds=2,
            )
        finally:
            db.profile = OptimizerProfile.ADVANCED
        factor = bad_ms / max(good_ms, 1e-9)
        report(
            "test1_predicate_order",
            render_table(
                "Test 1: flattened query on the SIMPLE profile, by "
                "predicate ordering (paper: latter ordering won by 5x)",
                ["ordering", "logical reads", "sim ms"],
                [
                    ("original-first (mimics DB2)", good_reads, round(good_ms, 2)),
                    ("metadata-first", bad_reads, round(bad_ms, 2)),
                ],
            )
            + f"\n\nslowdown factor of metadata-first: {factor:.1f}x",
        )
        assert factor > 1.5  # paper: ~5x

    def test_benchmark_flattened_execution(self, benchmark, experiment, flat_queries):
        db = experiment.mtd.db
        db.profile = OptimizerProfile.SIMPLE
        sql = flat_queries[PredicateOrder.ORIGINAL_FIRST]

        def run():
            return db.execute(sql, [2])

        try:
            result = benchmark(run)
        finally:
            db.profile = OptimizerProfile.ADVANCED
        assert result.rows
