"""Deterministic simulated-time cost model.

The paper measures wall-clock response times on a specific testbed
(2.8 GHz Xeon, 1 GB RAM, NFS storage over 2 GBit/s trunks).  We cannot
reproduce that hardware, so the testbed charges simulated milliseconds
for the *work counters* the engine reports — the quantities that
actually drive the paper's curves:

* buffer-pool misses dominate (NFS random page read ≈ a few ms),
* logical reads, row touches, and sorts model CPU,
* lock conflicts model the contention the paper observed for
  heavyweight selects and concurrent inserts (Section 5),
* DDL pays a fixed online-DDL penalty.

Constants are calibrated so the variability-0.0 configuration lands in
the magnitude range of Table 2; only *relative* behaviour across
configurations is claimed (DESIGN.md §2).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..engine.executor import ExecStats
from ..engine.pager import PoolStats


@dataclass(frozen=True)
class CostModel:
    """Milliseconds charged per unit of engine work."""

    base_ms: float = 0.4  # per-request overhead (network, parse)
    logical_read_ms: float = 0.02
    physical_read_ms: float = 4.0  # NFS random page read
    write_ms: float = 0.08
    row_ms: float = 0.004
    sort_ms: float = 1.5
    materialized_row_ms: float = 0.01
    lock_conflict_ms: float = 12.0
    ddl_ms: float = 40.0
    statement_ms: float = 0.15

    def response_ms(
        self,
        pool_delta: PoolStats,
        exec_delta: ExecStats,
        *,
        lock_conflicts: int = 0,
        ddl_statements: int = 0,
    ) -> float:
        """Simulated response time for one action's work."""
        row_work = (
            exec_delta.rows_scanned
            + exec_delta.rows_fetched
            + exec_delta.rows_joined
            + exec_delta.rows_output
        )
        return (
            self.base_ms
            + self.logical_read_ms * pool_delta.logical_total
            + self.physical_read_ms * pool_delta.physical_total
            + self.write_ms * pool_delta.writes
            + self.row_ms * row_work
            + self.sort_ms * exec_delta.sorts
            + self.materialized_row_ms * exec_delta.materialized_rows
            + self.lock_conflict_ms * lock_conflicts
            + self.ddl_ms * ddl_statements
            + self.statement_ms * exec_delta.statements
        )
