"""Tests for the Figure 2 capacity model."""

import pytest

from repro.core.capacity import (
    ApplicationProfile,
    BLADE_MEMORY,
    BIG_IRON_MEMORY,
    CapacityModel,
    FIGURE2_PROFILES,
    figure2_estimates,
)
from repro.engine.errors import PlanError


class TestCapacityModel:
    def test_blade_table_knee_order_of_magnitude(self):
        """Paper: 'performance on a blade server begins to degrade
        beyond about 50,000 tables' (1 GB, 4 KB/table)."""
        model = CapacityModel(memory_bytes=BLADE_MEMORY)
        assert 50_000 <= model.max_tables() <= 200_000

    def test_more_memory_more_tenants(self):
        profile = FIGURE2_PROFILES[2]  # CRM
        blade = CapacityModel(memory_bytes=BLADE_MEMORY)
        big = CapacityModel(memory_bytes=BIG_IRON_MEMORY)
        assert big.max_tenants(profile) > 10 * blade.max_tenants(profile)

    def test_complexity_reduces_tenancy(self):
        model = CapacityModel(memory_bytes=BLADE_MEMORY)
        counts = [model.max_tenants(p) for p in FIGURE2_PROFILES]
        assert counts == sorted(counts, reverse=True)

    def test_fully_private_bounded_by_metadata(self):
        model = CapacityModel(memory_bytes=BLADE_MEMORY)
        erp = FIGURE2_PROFILES[-1]
        assert erp.private_fraction == 1.0
        # ERP on a blade: the paper's figure shows ~10.
        assert 1 <= model.max_tenants(erp) <= 100

    def test_shared_bounded_by_working_set(self):
        model = CapacityModel(memory_bytes=BLADE_MEMORY)
        email = FIGURE2_PROFILES[0]
        expected = int(
            BLADE_MEMORY * model.min_buffer_fraction / email.working_set_bytes
        )
        assert model.max_tenants(email) == expected

    def test_oversized_schema_gives_zero(self):
        tiny = CapacityModel(memory_bytes=64 * 1024)
        erp = FIGURE2_PROFILES[-1]
        assert tiny.max_tenants(erp) == 0

    def test_invalid_private_fraction(self):
        model = CapacityModel(memory_bytes=BLADE_MEMORY)
        bad = ApplicationProfile("x", 1, 1, 1, private_fraction=2.0)
        with pytest.raises(PlanError):
            model.max_tenants(bad)


class TestFigure2Estimates:
    def test_grid_shape(self):
        rows = figure2_estimates()
        assert len(rows) == len(FIGURE2_PROFILES) * 2

    def test_paper_magnitudes_on_blade(self):
        """Figure 2's blade estimates: email ~10,000, CRM ~100, and the
        estimate bands in between."""
        by_key = {(app, host): n for app, host, n in figure2_estimates()}
        assert 5_000 <= by_key[("email", "blade")] <= 50_000
        assert 100 <= by_key[("crm_srm", "blade")] <= 1_000
        assert by_key[("erp", "blade")] < 100

    def test_big_iron_scales_up(self):
        by_key = {(app, host): n for app, host, n in figure2_estimates()}
        assert by_key[("crm_srm", "big_iron")] >= 10_000  # paper: up to 10,000
