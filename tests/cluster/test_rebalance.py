"""Online rebalancing: live moves under write traffic, capture-log
gating, rollback, and the crash matrix."""

import asyncio

import pytest

from repro.cluster import Cluster, ShardOptions
from repro.cluster.errors import ClusterError, RebalanceInProgressError
from repro.cluster.rebalance import Rebalancer
from repro.engine.durability.faults import FaultInjector, SimulatedCrash

from ..core.conftest import account_table
from .conftest import build_cluster, other_shard, run, seed_rows

CRASHPOINTS = [
    "rebalance.copy",
    "rebalance.ship",
    "rebalance.cutover",
    "rebalance.purge",
]


async def tenant_aids(cluster: Cluster, tenant: int) -> list[int]:
    result = await cluster.execute(
        tenant, "SELECT aid FROM account ORDER BY aid"
    )
    return [aid for (aid,) in result.rows]


class TestLiveRebalance:
    def test_move_preserves_all_rows(self, mem_cluster):
        async def go():
            await seed_rows(mem_cluster)
            for i in range(2, 40):
                await mem_cluster.insert(
                    17, "account", {"aid": i, "name": f"r{i}"}
                )
            source = mem_cluster.shard_of(17)
            dest = other_shard(mem_cluster, 17)
            stats = await mem_cluster.rebalance(17, dest)
            assert stats["rows_copied"] == 39
            assert mem_cluster.shard_of(17) == dest
            assert 17 not in mem_cluster.shards[source].mtd.tenant_ids()
            assert await tenant_aids(mem_cluster, 17) == list(range(1, 40))
            # Other tenants untouched.
            assert await tenant_aids(mem_cluster, 35) == [1]

        run(go())

    def test_move_under_concurrent_writes(self, replay_rng):
        """The acceptance bar: no row lost, none duplicated, while a
        writer hammers the moving tenant."""
        cluster = build_cluster(
            options=ShardOptions(storage_latency_ms=1.0)
        )

        async def go():
            for i in range(60):
                await cluster.insert(17, "account", {"aid": i, "name": f"pre{i}"})
            acked: list[int] = []
            moving = asyncio.Event()

            async def writer():
                aid = 1000
                while not moving.is_set():
                    await cluster.insert(
                        17, "account", {"aid": aid, "name": f"live{aid}"}
                    )
                    acked.append(aid)
                    aid += 1
                    await asyncio.sleep(replay_rng.random() * 0.002)

            async def mover():
                dest = other_shard(cluster, 17)
                stats = await cluster.rebalance(
                    17, dest, copy_chunk=8, drain_threshold=0
                )
                moving.set()
                return stats

            _, stats = await asyncio.gather(writer(), mover())
            survivors = await tenant_aids(cluster, 17)
            expected = sorted(set(range(60)) | set(acked))
            assert survivors == expected, "rows lost or duplicated"
            assert stats["dest"] == cluster.shard_of(17)
            # The writer overlapped the move, so the capture log
            # shipped something (or the writer never collided — allow
            # zero only if nothing was acked mid-copy).
            if stats["entries_shipped"] == 0:
                assert len(acked) == 0 or stats["rows_copied"] >= 60

        try:
            run(go())
        finally:
            cluster.close()

    def test_writes_after_move_land_on_dest(self, mem_cluster):
        async def go():
            await seed_rows(mem_cluster)
            dest = other_shard(mem_cluster, 17)
            await mem_cluster.rebalance(17, dest)
            await mem_cluster.insert(17, "account", {"aid": 50, "name": "post"})
            dest_rows = mem_cluster.shards[dest].mtd.tenant_row_counts(17)
            assert dest_rows == {"account": 2}

        run(go())

    def test_move_back_and_forth(self, mem_cluster):
        async def go():
            await seed_rows(mem_cluster)
            home = mem_cluster.shard_of(17)
            away = other_shard(mem_cluster, 17)
            await mem_cluster.rebalance(17, away)
            await mem_cluster.rebalance(17, home)
            assert mem_cluster.shard_of(17) == home
            assert await tenant_aids(mem_cluster, 17) == [1]
            assert mem_cluster.catalog.rebalance is None

        run(go())

    def test_rejects_noop_and_unknown_dest(self, mem_cluster):
        async def go():
            with pytest.raises(ClusterError):
                await mem_cluster.rebalance(17, mem_cluster.shard_of(17))
            with pytest.raises(ClusterError):
                await mem_cluster.rebalance(17, "nope")

        run(go())

    def test_single_move_at_a_time(self, mem_cluster):
        async def go():
            mem_cluster.catalog.begin_rebalance(
                35, mem_cluster.shard_of(35), other_shard(mem_cluster, 35)
            )
            with pytest.raises(RebalanceInProgressError):
                await mem_cluster.rebalance(17, other_shard(mem_cluster, 17))

        run(go())

    def test_metrics_counted(self, mem_cluster):
        async def go():
            await seed_rows(mem_cluster)
            await mem_cluster.rebalance(17, other_shard(mem_cluster, 17))
            assert (
                mem_cluster.metrics.get("cluster.rebalance.completed").value
                == 1
            )
            assert (
                mem_cluster.metrics.get("cluster.rebalance.rows_copied").value
                >= 1
            )

        run(go())


class TestCaptureGating:
    def test_snapshot_boundary_is_exact(self, mem_cluster):
        """A write before a table's snapshot is in the snapshot; a
        write after is in the capture log; never both, never neither."""
        shard = mem_cluster.shards[mem_cluster.shard_of(17)]
        shard.begin_capture(17)
        shard._do_insert(17, "account", {"aid": 1, "name": "before"})
        snapshot = shard.snapshot_table(17, "account")
        shard._do_insert(17, "account", {"aid": 2, "name": "after"})
        shard._do_execute(
            17, "UPDATE account SET name = 'edited' WHERE aid = 1"
        )
        log = shard.drain_capture()
        assert [values["aid"] for _, values in snapshot] == [1]
        assert [entry["kind"] for entry in log] == ["insert", "sql"]
        assert log[0]["values"]["aid"] == 2
        tail = shard.end_capture()
        assert tail == []

    def test_other_tenants_not_captured(self, mem_cluster):
        shard_17 = mem_cluster.shard_of(17)
        tenant_b = next(
            t for t in (35, 42) if mem_cluster.shard_of(t) == shard_17
        ) if any(
            mem_cluster.shard_of(t) == shard_17 for t in (35, 42)
        ) else None
        shard = mem_cluster.shards[shard_17]
        shard.begin_capture(17)
        shard.snapshot_table(17, "account")
        if tenant_b is not None:
            shard._do_insert(tenant_b, "account", {"aid": 9, "name": "x"})
        assert shard.drain_capture() == []
        shard.end_capture()


class TestRollback:
    def test_ordinary_failure_rolls_back_in_place(
        self, mem_cluster, monkeypatch
    ):
        async def go():
            await seed_rows(mem_cluster)
            source = mem_cluster.shard_of(17)
            dest = other_shard(mem_cluster, 17)

            def explode(*args, **kwargs):
                raise ValueError("disk on fire")

            monkeypatch.setattr(Rebalancer, "_apply_chunk", explode)
            with pytest.raises(ValueError):
                await mem_cluster.rebalance(17, dest)
            monkeypatch.undo()
            # Source still serves; dest holds no debris; journal clear.
            assert mem_cluster.shard_of(17) == source
            assert 17 not in mem_cluster.shards[dest].mtd.tenant_ids()
            assert mem_cluster.catalog.rebalance is None
            assert await tenant_aids(mem_cluster, 17) == [1]
            # And a clean retry succeeds.
            await mem_cluster.rebalance(17, dest)
            assert mem_cluster.shard_of(17) == dest

        run(go())


class TestCrashMatrix:
    @pytest.mark.parametrize("point", CRASHPOINTS)
    def test_crash_then_recover_leaves_one_copy(self, tmp_path, point):
        faults = FaultInjector(crash_at=(point, 1))
        cluster = build_cluster(tmp_path / "c", faults=faults)

        async def setup_and_crash():
            await seed_rows(cluster)
            for i in range(2, 12):
                await cluster.insert(17, "account", {"aid": i, "name": f"r{i}"})
            source = cluster.shard_of(17)
            dest = other_shard(cluster, 17)
            with pytest.raises(SimulatedCrash):
                await cluster.rebalance(17, dest)
            return source, dest

        source, dest = run(setup_and_crash())
        cluster.simulate_crash()

        recovered = Cluster.open(tmp_path / "c")
        try:
            holders = [
                name
                for name, shard in recovered.shards.items()
                if 17 in shard.mtd.tenant_ids()
            ]
            assert len(holders) == 1, (point, holders)
            assert recovered.shard_of(17) == holders[0]
            # Before the commit point the source is authoritative;
            # after it (purge) the destination is.
            expected = dest if point == "rebalance.purge" else source
            assert holders[0] == expected
            assert recovered.catalog.rebalance is None

            async def verify():
                aids = await tenant_aids(recovered, 17)
                assert aids == list(range(1, 12))
                # The cluster still takes writes for the tenant.
                await recovered.insert(17, "account", {"aid": 99, "name": "z"})
                assert 99 in await tenant_aids(recovered, 17)

            run(verify())
        finally:
            recovered.close()

    def test_recovered_cluster_can_rebalance_again(self, tmp_path):
        faults = FaultInjector(crash_at=("rebalance.copy", 1))
        cluster = build_cluster(tmp_path / "c", faults=faults)

        async def crash():
            await seed_rows(cluster)
            with pytest.raises(SimulatedCrash):
                await cluster.rebalance(17, other_shard(cluster, 17))

        run(crash())
        cluster.simulate_crash()
        recovered = Cluster.open(tmp_path / "c")
        try:
            async def retry():
                dest = other_shard(recovered, 17)
                stats = await recovered.rebalance(17, dest)
                assert recovered.shard_of(17) == dest
                assert stats["rows_copied"] == 1

            run(retry())
        finally:
            recovered.close()


class TestShardWorkerHygiene:
    def test_worker_thread_serializes_with_jobs(self, mem_cluster):
        """Jobs and traffic interleave without locks because they share
        the one worker thread."""
        shard = mem_cluster.shards[mem_cluster.shard_of(17)]

        async def go():
            inserts = [
                shard.insert(17, "account", {"aid": i, "name": f"n{i}"})
                for i in range(10)
            ]
            counts = shard.submit(shard.mtd.tenant_row_counts, 17)
            await asyncio.gather(*inserts, counts)
            final = await shard.submit(shard.mtd.tenant_row_counts, 17)
            assert final == {"account": 10}

        run(go())

    def test_table_definition_needs_account(self):
        # Guard: the suite's schema helper defines the account table
        # (a regression here invalidates every test above).
        assert account_table().name == "account"
