"""Merge every ``results/BENCH_*.json`` into one trajectory artifact.

Each gated benchmark module writes its own ``BENCH_<name>.json``; CI
uploads them individually, but comparing runs is easier with a single
file.  This script collects them into ``BENCH_all.json`` keyed by
benchmark name and prints a one-line headline per benchmark (the
speedup figures its gates watch), so a run's perf posture is readable
at a glance::

    python benchmarks/collect_bench.py
    python benchmarks/collect_bench.py -o /tmp/trajectory.json

Exit status is 0 even when no files exist (an empty merge is a valid
trajectory point for a fresh checkout); the merge records which files
were present.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

RESULTS_DIR = pathlib.Path(__file__).parent / "results"
DEFAULT_OUT = RESULTS_DIR / "BENCH_all.json"


def _headline(name: str, data: dict) -> str | None:
    """One human line per benchmark: every top-level or second-level
    key that looks like a speedup figure."""
    figures: list[str] = []

    def visit(prefix: str, node) -> None:
        if isinstance(node, dict):
            for key, value in node.items():
                label = f"{prefix}.{key}" if prefix else key
                if key.startswith("speedup") and isinstance(
                    value, (int, float)
                ):
                    figures.append(f"{label}={value:.2f}x")
                elif isinstance(value, dict) and not key.startswith("_"):
                    visit(label, value)

    visit("", data)
    if not figures:
        return None
    return f"{name}: " + ", ".join(sorted(figures))


def collect(results_dir: pathlib.Path = RESULTS_DIR) -> dict:
    merged: dict = {"benchmarks": {}, "files": []}
    for path in sorted(results_dir.glob("BENCH_*.json")):
        if path.name == "BENCH_all.json":
            continue
        name = path.stem.removeprefix("BENCH_")
        try:
            merged["benchmarks"][name] = json.loads(path.read_text())
        except json.JSONDecodeError as exc:
            print(f"warning: skipping {path.name}: {exc}", file=sys.stderr)
            continue
        merged["files"].append(path.name)
    return merged


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Merge benchmarks/results/BENCH_*.json into one file."
    )
    parser.add_argument(
        "-o",
        "--out",
        type=pathlib.Path,
        default=DEFAULT_OUT,
        help=f"output path (default: {DEFAULT_OUT})",
    )
    args = parser.parse_args(argv)
    merged = collect()
    args.out.parent.mkdir(parents=True, exist_ok=True)
    args.out.write_text(json.dumps(merged, indent=2) + "\n")
    print(f"merged {len(merged['files'])} file(s) -> {args.out}")
    for name, data in merged["benchmarks"].items():
        line = _headline(name, data)
        if line is not None:
            print("  " + line)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
