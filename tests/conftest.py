"""Shared fixtures for the test suite.

``replay_rng`` gives randomized tests (stress, crash-matrix, property
suites) a deterministic per-test RNG with a replayable seed: derived
from the test's node id by default, so every test draws a distinct but
stable stream, and overridable for replaying a failure::

    REPRO_TEST_SEED=123456 pytest tests/engine/test_lock_stress.py

The seed is printed to captured stdout, so a failing test's report
always shows the exact seed to replay it with.
"""

import os
import random
import zlib

import pytest


@pytest.fixture
def replay_rng(request):
    override = os.environ.get("REPRO_TEST_SEED")
    if override is not None:
        seed = int(override)
    else:
        seed = zlib.crc32(request.node.nodeid.encode("utf-8"))
    print(f"[replay] REPRO_TEST_SEED={seed} ({request.node.nodeid})")
    return random.Random(seed)
