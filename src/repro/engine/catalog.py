"""System catalog: tables, columns, indexes, and the meta-data budget.

The catalog charges a fixed memory cost per table and per index object
(4 KB per table by default — Section 1.1 quotes this figure for DB2
V9.1) and reports the total so the database can shrink the buffer pool
accordingly.  That interaction — *meta-data eats the buffer pool* — is
the mechanism behind the paper's Experiment 1.
"""

from __future__ import annotations

from dataclasses import dataclass

from .btree import BTreeIndex
from .columnstore import ColumnStore
from .errors import (
    DuplicateObjectError,
    NotNullViolation,
    UnknownObjectError,
)
from .heap import HeapFile, InsertStrategy, RowId
from .pager import BufferPool
from .values import SqlType

#: Default meta-data memory charged per table object (DB2 V9.1 figure).
TABLE_METADATA_COST = 4096
#: Meta-data memory charged per index object.
INDEX_METADATA_COST = 1024


@dataclass(frozen=True)
class Column:
    """One column of a physical table."""

    name: str
    type: SqlType
    not_null: bool = False

    @property
    def lname(self) -> str:
        return self.name.lower()


@dataclass
class IndexInfo:
    """Catalog entry for one B-tree index."""

    name: str
    table_name: str
    column_names: tuple[str, ...]
    unique: bool
    btree: BTreeIndex
    column_positions: tuple[int, ...] = ()


class Table:
    """A physical table: heap file + indexes + column metadata.

    All mutation goes through this class so indexes stay consistent with
    the heap.  Rows are tuples positionally aligned with ``columns``.
    """

    def __init__(
        self,
        name: str,
        columns: list[Column],
        heap: HeapFile,
    ) -> None:
        self.name = name
        self.columns = columns
        self.heap = heap
        self.indexes: dict[str, IndexInfo] = {}
        self._position: dict[str, int] = {
            c.lname: i for i, c in enumerate(columns)
        }
        if len(self._position) != len(columns):
            raise DuplicateObjectError(f"duplicate column names in {name}")

    # -- column helpers ---------------------------------------------------

    def column_position(self, name: str) -> int:
        try:
            return self._position[name.lower()]
        except KeyError:
            raise UnknownObjectError(
                f"no column {name!r} in table {self.name}"
            ) from None

    def has_column(self, name: str) -> bool:
        return name.lower() in self._position

    def row_width(self, row: tuple) -> int:
        return sum(
            col.type.value_width(value) for col, value in zip(self.columns, row)
        )

    def check_row(self, row: tuple) -> tuple:
        """Type-check and coerce a full row."""
        if len(row) != len(self.columns):
            raise NotNullViolation(
                f"{self.name}: expected {len(self.columns)} values, got {len(row)}"
            )
        out = []
        for col, value in zip(self.columns, row):
            if value is None and col.not_null:
                raise NotNullViolation(f"{self.name}.{col.name} is NOT NULL")
            out.append(col.type.check(value))
        return tuple(out)

    # -- mutation (index-maintaining) ----------------------------------------

    def insert_row(self, row: tuple) -> RowId:
        row = self.check_row(row)
        rid = self.heap.insert(row, self.row_width(row))
        for info in self.indexes.values():
            info.btree.insert(self._index_key(info, row), rid)
        return rid

    def delete_row(self, rid: RowId) -> tuple:
        row = self.heap.fetch(rid)
        for info in self.indexes.values():
            info.btree.delete(self._index_key(info, row), rid)
        self.heap.delete(rid)
        return row

    def update_row(self, rid: RowId, new_row: tuple) -> RowId:
        new_row = self.check_row(new_row)
        old_row = self.heap.fetch(rid)
        new_rid = self.heap.update(rid, new_row, self.row_width(new_row))
        for info in self.indexes.values():
            old_key = self._index_key(info, old_row)
            new_key = self._index_key(info, new_row)
            if old_key != new_key or new_rid != rid:
                info.btree.delete(old_key, rid)
                info.btree.insert(new_key, new_rid)
        return new_rid

    def _index_key(self, info: IndexInfo, row: tuple) -> tuple:
        return tuple(row[p] for p in info.column_positions)

    # -- stats ------------------------------------------------------------------

    @property
    def storage(self) -> str:
        """Storage format of the backing row store: heap | columnar."""
        return self.heap.storage_kind

    @property
    def row_count(self) -> int:
        return self.heap.row_count

    @property
    def page_count(self) -> int:
        return self.heap.page_count

    def find_index(self, leading_columns: tuple[str, ...]) -> IndexInfo | None:
        """Best index whose leading columns cover ``leading_columns``.

        Prefers the index matching the *most* leading columns; ties go to
        unique indexes, mirroring common optimizer behaviour.
        """
        wanted = [c.lower() for c in leading_columns]
        best: IndexInfo | None = None
        best_score = (-1, False)
        for info in self.indexes.values():
            cols = [c.lower() for c in info.column_names]
            matched = 0
            for col in cols:
                if col in wanted:
                    matched += 1
                else:
                    break
            if matched == 0:
                continue
            score = (matched, info.unique)
            if score > best_score:
                best, best_score = info, score
        return best


class Catalog:
    """All tables and indexes of one database, plus the meta-data budget."""

    def __init__(
        self,
        pool: BufferPool,
        *,
        table_metadata_cost: int = TABLE_METADATA_COST,
        index_metadata_cost: int = INDEX_METADATA_COST,
        insert_strategy: InsertStrategy = InsertStrategy.FIRST_FIT,
        prefix_compression: bool = True,
        metrics=None,
    ) -> None:
        self._pool = pool
        self._metrics = metrics
        self._tables: dict[str, Table] = {}
        self._next_segment = 1
        self.table_metadata_cost = table_metadata_cost
        self.index_metadata_cost = index_metadata_cost
        self.insert_strategy = insert_strategy
        self.prefix_compression = prefix_compression
        self.metadata_bytes = 0
        self.ddl_statements = 0
        #: Monotonically increasing schema version, bumped on every
        #: CREATE/DROP TABLE/INDEX.  Cached plans are validated against
        #: it: a bump means any previously compiled plan may reference
        #: objects that changed shape or disappeared.
        self.version = 0

    # -- lookup ------------------------------------------------------------

    def table(self, name: str) -> Table:
        try:
            return self._tables[name.lower()]
        except KeyError:
            raise UnknownObjectError(f"no table named {name!r}") from None

    def has_table(self, name: str) -> bool:
        return name.lower() in self._tables

    def tables(self) -> list[Table]:
        return list(self._tables.values())

    @property
    def table_count(self) -> int:
        return len(self._tables)

    @property
    def index_count(self) -> int:
        return sum(len(t.indexes) for t in self._tables.values())

    @property
    def next_segment(self) -> int:
        return self._next_segment

    # -- recovery ----------------------------------------------------------

    def adopt(self, table: Table) -> None:
        """Register an externally rebuilt table (checkpoint restore) —
        no segment allocation, no meta-data charge, no version bump:
        the restored counters carry all of that."""
        if self.has_table(table.name):
            raise DuplicateObjectError(f"table {table.name!r} already exists")
        self._tables[table.name.lower()] = table

    def restore_counters(
        self,
        *,
        next_segment: int,
        metadata_bytes: int,
        ddl_statements: int,
        version: int,
    ) -> None:
        """Restore allocator/accounting state from a checkpoint."""
        self._next_segment = next_segment
        self.metadata_bytes = metadata_bytes
        self.ddl_statements = ddl_statements
        self.version = version

    # -- DDL ---------------------------------------------------------------

    def create_table(
        self,
        name: str,
        columns: list[Column],
        *,
        storage: str | None = None,
    ) -> Table:
        if self.has_table(name):
            raise DuplicateObjectError(f"table {name!r} already exists")
        storage = storage or "heap"
        if storage == "columnar":
            heap: HeapFile = ColumnStore(
                self._pool,
                self._next_segment,
                self.insert_strategy,
                ncols=len(columns),
                metrics=self._metrics,
            )
        elif storage == "heap":
            heap = HeapFile(
                self._pool,
                self._next_segment,
                self.insert_strategy,
                metrics=self._metrics,
            )
        else:
            raise UnknownObjectError(
                f"unknown storage format {storage!r} (heap or columnar)"
            )
        self._next_segment += 1
        table = Table(name, columns, heap)
        self._tables[name.lower()] = table
        self.metadata_bytes += self.table_metadata_cost
        self.ddl_statements += 1
        self.version += 1
        return table

    def drop_table(self, name: str) -> None:
        table = self.table(name)
        for info in list(table.indexes.values()):
            info.btree.drop()
            self.metadata_bytes -= self.index_metadata_cost
        table.heap.drop()
        del self._tables[name.lower()]
        self.metadata_bytes -= self.table_metadata_cost
        self.ddl_statements += 1
        self.version += 1

    def create_index(
        self,
        index_name: str,
        table_name: str,
        column_names: list[str],
        *,
        unique: bool = False,
    ) -> IndexInfo:
        table = self.table(table_name)
        key = index_name.lower()
        if key in table.indexes:
            raise DuplicateObjectError(f"index {index_name!r} already exists")
        positions = tuple(table.column_position(c) for c in column_names)
        btree = BTreeIndex(
            self._pool,
            self._next_segment,
            unique=unique,
            prefix_compression=self.prefix_compression,
            metrics=self._metrics,
        )
        self._next_segment += 1
        info = IndexInfo(
            index_name, table.name, tuple(column_names), unique, btree, positions
        )
        # Backfill from existing rows before publishing the index.
        for rid, row in table.heap.scan():
            btree.insert(tuple(row[p] for p in positions), rid)
        table.indexes[key] = info
        self.metadata_bytes += self.index_metadata_cost
        self.ddl_statements += 1
        self.version += 1
        return info

    def drop_index(self, table_name: str, index_name: str) -> None:
        table = self.table(table_name)
        key = index_name.lower()
        if key not in table.indexes:
            raise UnknownObjectError(f"no index named {index_name!r}")
        table.indexes.pop(key).btree.drop()
        self.metadata_bytes -= self.index_metadata_cost
        self.ddl_statements += 1
        self.version += 1
