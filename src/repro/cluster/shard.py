"""One shard: a :class:`MultiTenantDatabase` behind a worker thread.

The engine is synchronous, so each shard owns a one-thread
``ThreadPoolExecutor`` and every operation against the shard runs as a
job on that thread.  That gives three properties at once:

* the asyncio front door never blocks on engine work — it awaits the
  executor future while other shards' threads make progress (fsyncs and
  the simulated storage latency release the GIL);
* all operations on one shard are serialized, so per-shard state
  (ownership set, capture log) needs no locks; and
* multi-step jobs submitted by the rebalancer (e.g. "mark this table
  captured *and* snapshot it") are atomic with respect to tenant
  traffic, because both are jobs on the same thread.

Ownership is enforced here, not just at the router: every request
carries an implicit "I believe you own tenant T" claim, and a shard
that does not raises :class:`WrongShardError` carrying its placement
version, so stale routers self-correct.
"""

from __future__ import annotations

import asyncio
import functools
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable

from ..core.api import MultiTenantDatabase
from ..engine.database import Database, Result
from ..engine.durability import DurabilityOptions
from ..engine.observability import MetricsRegistry
from ..engine.sql import ast
from .errors import ShardClosedError, WrongShardError

_WRITE_NODES = (ast.Insert, ast.Update, ast.Delete, ast.CreateTable)


@dataclass
class ShardOptions:
    """Per-shard engine configuration."""

    layout: str = "chunk_folding"
    layout_options: dict = field(default_factory=dict)
    #: Simulated stable-storage commit latency per write, slept on the
    #: shard's worker thread.  Models the fsync / replication RTT of a
    #: production storage service; the local research engine's real
    #: fsync is too fast (~0.1 ms) to exercise the overlap the async
    #: front door exists to provide.  0 disables.
    storage_latency_ms: float = 0.0
    durability: DurabilityOptions | None = None
    execution: str | None = None


class ShardWorker:
    """A named shard; all engine access funnels through one thread."""

    def __init__(
        self,
        name: str,
        path: str | Path | None = None,
        *,
        options: ShardOptions | None = None,
        metrics: MetricsRegistry | None = None,
        recover: bool = False,
    ) -> None:
        self.name = name
        self.path = Path(path) if path is not None else None
        self.options = options or ShardOptions()
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._closed = False
        if self.path is not None:
            self.path.mkdir(parents=True, exist_ok=True)
            db = Database(
                path=str(self.path),
                durability=self.options.durability or DurabilityOptions(),
            )
        else:
            db = Database()
        if recover:
            self.mtd = MultiTenantDatabase.recover(db)
        else:
            self.mtd = MultiTenantDatabase(
                layout=self.options.layout,
                db=db,
                execution=self.options.execution,
                **self.options.layout_options,
            )
        #: Tenants this shard believes it owns, and the placement
        #: version under which it was last told so.
        self.owned: set[int] = set()
        self.placement_version = 0
        #: Capture state for an in-flight rebalance: writes to captured
        #: tables of the moving tenant are logged for shipping.
        self._capture_tenant: int | None = None
        self._captured_tables: set[str] = set()
        self._capture_log: list[dict] = []
        self.pool = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix=f"shard-{name}"
        )
        self._c_requests = self.metrics.counter(
            f"cluster.shard.{name}.requests"
        )
        self._c_wrong = self.metrics.counter(
            f"cluster.shard.{name}.wrong_shard"
        )
        self._c_captured = self.metrics.counter(
            f"cluster.shard.{name}.captured_writes"
        )

    # -- ownership (run on the worker thread) --------------------------------

    def adopt(self, tenant_id: int, version: int) -> None:
        self.owned.add(tenant_id)
        self.placement_version = max(self.placement_version, version)

    def disown(self, tenant_id: int, version: int) -> None:
        self.owned.discard(tenant_id)
        self.placement_version = max(self.placement_version, version)

    def _check_owned(self, tenant_id: int) -> None:
        if self._closed:
            raise ShardClosedError(f"shard {self.name!r} is closed")
        if tenant_id not in self.owned:
            self._c_wrong.inc()
            raise WrongShardError(tenant_id, self.name, self.placement_version)

    # -- engine operations (run on the worker thread) ------------------------

    def _storage_stall(self) -> None:
        if self.options.storage_latency_ms > 0:
            time.sleep(self.options.storage_latency_ms / 1000.0)

    def _capture(self, tenant_id: int, table: str, entry: dict) -> None:
        if (
            self._capture_tenant == tenant_id
            and table.lower() in self._captured_tables
        ):
            self._capture_log.append(entry)
            self._c_captured.inc()

    def _do_execute(
        self, tenant_id: int, sql: str, params: tuple = ()
    ) -> Result:
        self._check_owned(tenant_id)
        self._c_requests.inc()
        stmt = self.mtd._parse_logical(sql)
        result = self.mtd._execute_parsed(tenant_id, sql, stmt, params)
        if isinstance(stmt, _WRITE_NODES):
            if isinstance(stmt, (ast.Insert, ast.Update, ast.Delete)):
                self._capture(
                    tenant_id,
                    stmt.table,
                    {"kind": "sql", "sql": sql, "params": list(params)},
                )
            self._storage_stall()
        return result

    def _do_insert(
        self,
        tenant_id: int,
        table: str,
        values: dict,
        *,
        row_id: int | None = None,
    ) -> int:
        self._check_owned(tenant_id)
        self._c_requests.inc()
        rid = self.mtd.insert(tenant_id, table, values, row_id=row_id)
        self._capture(
            tenant_id,
            table,
            {"kind": "insert", "table": table, "values": values, "row_id": rid},
        )
        self._storage_stall()
        return rid

    # -- admin-plane jobs (run on the worker thread) -------------------------

    def _do_tenant_ids(self) -> list[int]:
        return self.mtd.tenant_ids()

    def _do_tenant_row_counts(self) -> dict[int, dict[str, int]]:
        return {
            tenant_id: self.mtd.tenant_row_counts(tenant_id)
            for tenant_id in self.mtd.tenant_ids()
        }

    # -- capture protocol (jobs submitted by the rebalancer) -----------------

    def begin_capture(self, tenant_id: int) -> None:
        self._capture_tenant = tenant_id
        self._captured_tables = set()
        self._capture_log = []

    def snapshot_table(
        self, tenant_id: int, table: str
    ) -> list[tuple[int | None, dict]]:
        """Mark ``table`` captured and snapshot it — one atomic job.

        Because marking and reading happen on the worker thread with no
        interleaved traffic, every tenant write is either in the
        snapshot (ran before this job) or in the capture log (ran
        after) — never both, never neither.
        """
        rows = self.mtd.export_rows(tenant_id, table)
        self._captured_tables.add(table.lower())
        return rows

    def drain_capture(self) -> list[dict]:
        drained = self._capture_log
        self._capture_log = []
        return drained

    def end_capture(self, *, disown_version: int | None = None) -> list[dict]:
        """Stop capturing; optionally drop ownership in the same job.

        Disowning atomically with the final drain is the cut-over: any
        request landing after this job gets :class:`WrongShardError`
        and is re-routed, so no write can miss both the shipped log and
        the destination.
        """
        tail = self.drain_capture()
        if disown_version is not None and self._capture_tenant is not None:
            self.disown(self._capture_tenant, disown_version)
        self._capture_tenant = None
        self._captured_tables = set()
        return tail

    def apply_captured(self, tenant_id: int, entries: list[dict]) -> int:
        """Replay shipped capture-log entries (runs on the *dest* shard)."""
        applied = 0
        for entry in entries:
            if entry["kind"] == "insert":
                self.mtd.insert(
                    tenant_id,
                    entry["table"],
                    entry["values"],
                    row_id=entry["row_id"],
                )
            else:
                self.mtd.execute(
                    tenant_id, entry["sql"], tuple(entry["params"])
                )
            applied += 1
        return applied

    # -- async facade --------------------------------------------------------

    async def submit(self, fn: Callable, *args: Any, **kwargs: Any) -> Any:
        """Run any shard job on the worker thread."""
        if self._closed:
            raise ShardClosedError(f"shard {self.name!r} is closed")
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(
            self.pool, functools.partial(fn, *args, **kwargs)
        )

    async def execute(
        self, tenant_id: int, sql: str, params: tuple = ()
    ) -> Result:
        return await self.submit(self._do_execute, tenant_id, sql, params)

    async def insert(
        self,
        tenant_id: int,
        table: str,
        values: dict,
        *,
        row_id: int | None = None,
    ) -> int:
        return await self.submit(
            self._do_insert, tenant_id, table, values, row_id=row_id
        )

    # -- lifecycle -----------------------------------------------------------

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self.pool.shutdown(wait=True)
        self.mtd.db.close()

    def simulate_crash(self) -> None:
        """Die like a power cut: stop the worker and drop the file
        handles without flushing anything buffered in user space."""
        if self._closed:
            return
        self._closed = True
        self.pool.shutdown(wait=True, cancel_futures=True)
        db = self.mtd.db
        durability = db.durability
        if durability is not None:
            wal_file = durability.wal._file
            if wal_file is not None:
                wal_file.close()
                durability.wal._file = None
            durability.store.close()
        db._closed = True  # keep a later close() from flushing
