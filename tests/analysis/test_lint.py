"""Protocol lint (LNT rules) over real and synthetic source trees."""

import textwrap

import pytest

from repro.analysis.lint import analyze_lint, run_crashpoint_census


@pytest.fixture(scope="module")
def census():
    return run_crashpoint_census()


def write_tree(tmp_path, files):
    for rel, body in files.items():
        path = tmp_path / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(body))
    return str(tmp_path)


class TestCleanTree:
    def test_src_is_lint_clean(self, census):
        report = analyze_lint(census=census)
        assert report.findings == []
        assert report.checked > 0


class TestMarkDirtyRule:
    def test_mark_dirty_outside_storage_layer(self, tmp_path, census):
        root = write_tree(
            tmp_path,
            {
                "engine/rogue.py": """
                    def poke(pool, page_id):
                        pool.mark_dirty(page_id)
                """,
                "engine/pager.py": """
                    class BufferPool:
                        def touch(self):
                            self.mark_dirty(1)
                """,
            },
        )
        report = analyze_lint(root=root, census=census)
        findings = [f for f in report.findings if f.rule_id == "LNT001"]
        assert len(findings) == 1
        assert "rogue.py" in findings[0].locus


class TestCrashSwallowRule:
    def test_bare_except_without_reraise(self, tmp_path, census):
        root = write_tree(
            tmp_path,
            {
                "engine/sloppy.py": """
                    def run(step):
                        try:
                            step()
                        except:
                            pass
                """,
            },
        )
        report = analyze_lint(root=root, census=census)
        assert report.by_rule().get("LNT002", 0) == 1

    def test_base_exception_with_reraise_is_fine(self, tmp_path, census):
        root = write_tree(
            tmp_path,
            {
                "engine/careful.py": """
                    def run(step, cleanup):
                        try:
                            step()
                        except BaseException:
                            cleanup()
                            raise
                """,
            },
        )
        report = analyze_lint(root=root, census=census)
        assert report.by_rule().get("LNT002", 0) == 0

    def test_except_exception_is_not_flagged(self, tmp_path, census):
        """SimulatedCrash subclasses BaseException precisely so that
        ``except Exception`` cannot swallow it."""
        root = write_tree(
            tmp_path,
            {
                "engine/normal.py": """
                    def run(step):
                        try:
                            step()
                        except Exception:
                            pass
                """,
            },
        )
        report = analyze_lint(root=root, census=census)
        assert report.by_rule().get("LNT002", 0) == 0


class TestDeadCrashpointRule:
    def test_unreferenced_crashpoint_in_census_is_fine(self):
        report = analyze_lint(census={"txn.commit": 1, "extra.point": 3})
        # Static refs from the real src/ tree still fail (most are not
        # in this tiny census), proving the diff direction: static refs
        # must be covered by the census, not vice versa.
        assert report.by_rule().get("LNT003", 0) >= 1

    def test_full_census_covers_all_static_refs(self, census):
        report = analyze_lint(census=census)
        assert report.by_rule().get("LNT003", 0) == 0

    def test_fstring_crashpoints_match_as_patterns(self, census):
        from repro.analysis.lint import static_crashpoints

        patterns = [r for r in static_crashpoints() if not r.literal]
        assert patterns, "expected f-string crashpoint refs (admin.*)"
        for ref in patterns:
            assert any(ref.matches(name) for name in census)
        assert not any(
            ref.matches("adminXfooXbegin") for ref in patterns
        )


class TestMetricLoopRule:
    def test_registry_lookup_in_loop(self, tmp_path, census):
        root = write_tree(
            tmp_path,
            {
                "engine/hot.py": """
                    def drain(metrics, items):
                        for item in items:
                            metrics.counter("engine.drained").inc()
                """,
            },
        )
        report = analyze_lint(root=root, census=census)
        assert report.by_rule().get("LNT004", 0) == 1

    def test_prebound_counter_in_loop_is_fine(self, tmp_path, census):
        root = write_tree(
            tmp_path,
            {
                "engine/cool.py": """
                    def drain(metrics, items):
                        counter = metrics.counter("engine.drained")
                        for item in items:
                            counter.inc()
                """,
            },
        )
        report = analyze_lint(root=root, census=census)
        assert report.by_rule().get("LNT004", 0) == 0

    def test_rule_scoped_to_engine(self, tmp_path, census):
        root = write_tree(
            tmp_path,
            {
                "testbed/report.py": """
                    def render(metrics, names):
                        for name in names:
                            metrics.counter(name).inc()
                """,
            },
        )
        report = analyze_lint(root=root, census=census)
        assert report.by_rule().get("LNT004", 0) == 0
