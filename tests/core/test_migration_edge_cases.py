"""Edge cases of on-the-fly migration: Trashcan interaction, repeated
migrations, and empty tenants."""

import pytest

from repro import MultiTenantDatabase
from repro.engine.database import Database
from repro.engine.durability import (
    DurabilityOptions,
    FaultInjector,
    SimulatedCrash,
)

from .conftest import build_running_example


class TestMigrationEdgeCases:
    def test_migrating_empty_tenant(self):
        mtd = build_running_example("extension")
        mtd.create_tenant(99)
        moved = mtd.migrate_tenant(99, "chunk")
        assert moved == {"account": 0}
        assert mtd.execute(99, "SELECT COUNT(*) FROM account").rows == [(0,)]

    def test_chained_migrations(self):
        mtd = build_running_example("extension")
        before = sorted(mtd.execute(17, "SELECT * FROM account").rows)
        mtd.migrate_tenant(17, "chunk")
        mtd.migrate_tenant(17, "universal")
        mtd.migrate_tenant(17, "pivot")
        assert sorted(mtd.execute(17, "SELECT * FROM account").rows) == before

    def test_migration_empties_the_trashcan(self):
        """Migration copies the *live* logical state; soft-deleted rows
        do not follow the tenant (the reconstruction the migrator reads
        filters alive = 1, and the source fragments are purged)."""
        mtd = build_running_example("chunk", soft_delete=True)
        mtd.execute(17, "DELETE FROM account WHERE aid = 1")
        mtd.migrate_tenant(17, "extension", soft_delete=True)
        assert mtd.execute(17, "SELECT COUNT(*) FROM account").rows == [(1,)]
        # The trashed row is gone for good: restore finds nothing.
        mtd.restore(17, "account", [0])
        assert mtd.execute(17, "SELECT COUNT(*) FROM account").rows == [(1,)]

    def test_migration_between_chunk_widths(self):
        mtd = build_running_example("chunk", width=1)
        before = sorted(mtd.execute(17, "SELECT * FROM account").rows)
        mtd.migrate_tenant(17, "chunk", width=6)
        assert sorted(mtd.execute(17, "SELECT * FROM account").rows) == before

    def test_two_tenants_on_two_override_layouts(self):
        mtd = build_running_example("extension")
        mtd.migrate_tenant(17, "chunk")
        mtd.migrate_tenant(42, "universal")
        assert mtd.execute(
            17, "SELECT beds FROM account WHERE hospital = 'State'"
        ).rows == [(1042,)]
        assert mtd.execute(42, "SELECT dealers FROM account").rows == [(65,)]
        assert mtd.execute(35, "SELECT name FROM account").rows == [("Ball",)]

    def test_insert_after_chain_keeps_unique_row_ids(self):
        mtd = build_running_example("extension")
        mtd.migrate_tenant(17, "universal")
        mtd.migrate_tenant(17, "chunk")
        first = mtd.insert(17, "account", {"aid": 50, "name": "x"})
        second = mtd.insert(17, "account", {"aid": 51, "name": "y"})
        assert second == first + 1
        assert first >= 2


class TestAdminCrashAtomicity:
    """Administrative operations must be all-or-nothing under a crash.

    The nastiest window is mid-``migrate_tenant`` after the source
    fragments were purged, and mid-``drop_tenant`` between per-table
    deletes: without the WAL's admin-operation brackets, either crash
    would destroy tenant data.  Recovery discards the incomplete
    operation wholesale, so the tenant reappears intact on its original
    layout.
    """

    @staticmethod
    def _durable_example(path, crash_at):
        db = Database(
            path=str(path),
            durability=DurabilityOptions(
                faults=FaultInjector(crash_at=crash_at)
            ),
        )
        return build_running_example("chunk", db=db)

    @staticmethod
    def _account_rows(mtd, tenant_id):
        return sorted(
            mtd.execute(tenant_id, "SELECT aid, name FROM account").rows
        )

    def test_crash_mid_migration_leaves_source_intact(self, tmp_path):
        mtd = self._durable_example(tmp_path, ("migrate.after_purge", 1))
        before = self._account_rows(mtd, 17)
        with pytest.raises(SimulatedCrash):
            mtd.migrate_tenant(17, "private")
        del mtd
        recovered = MultiTenantDatabase.recover(Database(path=str(tmp_path)))
        assert recovered.layout_for(17) is recovered.layout  # no override
        assert self._account_rows(recovered, 17) == before
        # The aborted migration left no half-moved state behind: the
        # tenant is fully operational, including a real migration.
        recovered.insert(17, "account", {"aid": 60, "name": "after"})
        recovered.migrate_tenant(17, "private")
        assert (60, "after") in self._account_rows(recovered, 17)
        recovered.db.close()

    def test_crash_mid_drop_leaves_tenant_intact(self, tmp_path):
        mtd = self._durable_example(tmp_path, ("drop_tenant.table", 1))
        before = self._account_rows(mtd, 17)
        with pytest.raises(SimulatedCrash):
            mtd.drop_tenant(17)
        del mtd
        recovered = MultiTenantDatabase.recover(Database(path=str(tmp_path)))
        assert {t.tenant_id for t in recovered.schema.tenants()} == {17, 35, 42}
        assert self._account_rows(recovered, 17) == before
        # Dropping again (no crash armed now) completes cleanly.
        recovered.drop_tenant(17)
        assert {t.tenant_id for t in recovered.schema.tenants()} == {35, 42}
        recovered.db.close()
