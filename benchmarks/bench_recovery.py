"""Durability economics: WAL overhead and recovery time.

Not a paper figure — this charts the cost of the durability subsystem
the engine gained for the cold-cache experiments: what write-ahead
logging adds to a DML workload relative to the in-memory engine, how
group commit amortizes fsyncs, and how recovery time scales with the
length of the log that must be replayed (checkpoints bound it).
"""

from __future__ import annotations

import shutil
import tempfile
import time

import pytest

from repro.engine.database import Database
from repro.engine.durability import DurabilityOptions

ROWS = 400

#: Post-checkpoint insert counts for the recovery-time sweep.
LOG_LENGTHS = (0, 200, 800)


def _workload(db: Database, rows: int = ROWS, offset: int = 0) -> None:
    for i in range(offset, offset + rows):
        db.execute(
            "INSERT INTO events VALUES (?, ?, ?)",
            [i, f"payload-{i}", i % 7],
        )


def _build(path: str | None, group_commit: int = 1) -> Database:
    db = Database(
        path=path,
        durability=DurabilityOptions(group_commit=group_commit),
    )
    db.execute(
        "CREATE TABLE events (id INTEGER NOT NULL, "
        "payload VARCHAR(40), bucket INTEGER)"
    )
    db.execute("CREATE INDEX events_id ON events (id)")
    return db


@pytest.fixture(scope="module")
def wal_overhead():
    """Wall-clock of the same workload, in-memory vs durable (group
    commit 1 and 64), plus the durable runs' WAL statistics."""
    out = {}
    memory = _build(None)
    start = time.perf_counter()
    _workload(memory)
    out["memory"] = (time.perf_counter() - start, None)
    for group_commit in (1, 64):
        directory = tempfile.mkdtemp(prefix="repro-bench-wal-")
        try:
            db = _build(directory, group_commit)
            start = time.perf_counter()
            _workload(db)
            elapsed = time.perf_counter() - start
            out[f"wal-gc{group_commit}"] = (elapsed, db.wal_stats)
            db.close()
        finally:
            shutil.rmtree(directory, ignore_errors=True)
    return out


@pytest.fixture(scope="module")
def recovery_sweep():
    """Recovery time and replayed-record counts vs log length."""
    points = []
    for log_length in LOG_LENGTHS:
        directory = tempfile.mkdtemp(prefix="repro-bench-recovery-")
        try:
            db = _build(directory)
            _workload(db)
            db.checkpoint()
            _workload(db, rows=log_length, offset=ROWS)
            db.durability.wal.flush()
            del db  # crash: no close, no final checkpoint
            reopened = Database(path=directory)
            points.append((log_length, dict(reopened.durability.recovery_info)))
            reopened.close()
        finally:
            shutil.rmtree(directory, ignore_errors=True)
    return points


class TestRecoveryBench:
    def test_report(self, benchmark, wal_overhead, recovery_sweep, report):
        lines = ["Durability: WAL overhead and recovery time", ""]
        memory_s = wal_overhead["memory"][0]
        for label, (elapsed, stats) in wal_overhead.items():
            line = f"{label:10s} {ROWS} inserts in {elapsed * 1e3:8.1f} ms"
            if stats is not None:
                line += (
                    f"  (x{elapsed / memory_s:.1f} vs memory; "
                    f"wal bytes={stats.bytes_written} fsyncs={stats.fsyncs})"
                )
            lines.append(line)
        lines.append("")
        for log_length, info in recovery_sweep:
            lines.append(
                f"log={log_length:4d} post-checkpoint inserts: "
                f"replayed={info['records_replayed']:5d} "
                f"recovery={info['ms']:7.2f} ms"
            )
        benchmark.pedantic(lambda: None, rounds=1)
        report("recovery", "\n".join(lines))

    def test_group_commit_batches_fsyncs(self, wal_overhead):
        eager = wal_overhead["wal-gc1"][1]
        batched = wal_overhead["wal-gc64"][1]
        assert batched.fsyncs < eager.fsyncs / 4

    def test_replay_scales_with_log_length(self, recovery_sweep):
        replayed = [info["records_replayed"] for _, info in recovery_sweep]
        assert replayed == sorted(replayed)
        # A checkpoint-anchored log replays (almost) nothing.
        assert replayed[0] <= 2

    def test_recovery_replays_committed_rows(self, recovery_sweep):
        for _log_length, info in recovery_sweep:
            assert info["losers"] == 0
            assert info["checkpoint_restored"]

    def test_benchmark_recovery(self, benchmark):
        directory = tempfile.mkdtemp(prefix="repro-bench-reopen-")
        try:
            db = _build(directory)
            _workload(db)
            db.durability.wal.flush()
            del db

            def reopen():
                Database(path=directory).close()

            benchmark(reopen)
        finally:
            shutil.rmtree(directory, ignore_errors=True)
