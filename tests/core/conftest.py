"""Shared fixtures: the paper's running example (Figure 4).

Three tenants with Account tables: tenant 17 extends for health care,
tenant 42 for automotive, tenant 35 uses the plain base table.
"""

import pytest

from repro import (
    Extension,
    LogicalColumn,
    LogicalTable,
    MultiTenantDatabase,
)
from repro.engine.values import DATE, INTEGER, varchar

ALL_LAYOUTS = [
    "private",
    "extension",
    "universal",
    "pivot",
    "chunk",
    "chunk_folding",
]

#: Layouts that can represent the running example (basic cannot: no
#: extensibility).
EXTENSIBLE_LAYOUTS = ALL_LAYOUTS


def account_table() -> LogicalTable:
    return LogicalTable(
        "account",
        (
            LogicalColumn("aid", INTEGER, indexed=True, not_null=True),
            LogicalColumn("name", varchar(50)),
            LogicalColumn("opened", DATE),
        ),
    )


def healthcare_extension() -> Extension:
    return Extension(
        "healthcare",
        "account",
        (
            LogicalColumn("hospital", varchar(50)),
            LogicalColumn("beds", INTEGER),
        ),
    )


def automotive_extension() -> Extension:
    return Extension(
        "automotive",
        "account",
        (LogicalColumn("dealers", INTEGER),),
    )


def build_running_example(layout: str, **options) -> MultiTenantDatabase:
    mtd = MultiTenantDatabase(layout=layout, **options)
    mtd.define_table(account_table())
    mtd.define_extension(healthcare_extension())
    mtd.define_extension(automotive_extension())
    mtd.create_tenant(17, extensions=("healthcare",))
    mtd.create_tenant(35)
    mtd.create_tenant(42, extensions=("automotive",))
    mtd.insert(
        17,
        "account",
        {
            "aid": 1,
            "name": "Acme",
            "opened": "2001-02-03",
            "hospital": "St. Mary",
            "beds": 135,
        },
    )
    mtd.insert(
        17,
        "account",
        {
            "aid": 2,
            "name": "Gump",
            "opened": "2004-05-06",
            "hospital": "State",
            "beds": 1042,
        },
    )
    mtd.insert(35, "account", {"aid": 1, "name": "Ball", "opened": "2006-07-08"})
    mtd.insert(
        42,
        "account",
        {"aid": 1, "name": "Big", "opened": "2007-09-10", "dealers": 65},
    )
    return mtd


@pytest.fixture(params=ALL_LAYOUTS)
def any_layout_mtd(request):
    return build_running_example(request.param)
