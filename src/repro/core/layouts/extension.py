"""Extension Table Layout — Figure 4(b).

Base tables and extension tables are shared among tenants; both carry
the Tenant and Row meta-data columns (the two gray columns of Figure
4(b)), and logical rows are reconstructed by joining on Row.  Descended
from the Decomposed Storage Model, but partitioning stops at
"naturally-occurring groups" of columns rather than single columns.
"""

from __future__ import annotations

from ..schema import Extension, LogicalTable
from .base import ColumnLoc, Fragment, Layout, ROW


class ExtensionTableLayout(Layout):
    name = "extension"
    shares_statements = True

    def base_physical(self, table_name: str) -> str:
        return f"{table_name.lower()}_ext"

    def extension_physical(self, extension_name: str) -> str:
        return f"ext_{extension_name.lower()}"

    # -- DDL ---------------------------------------------------------------

    def _table_ddl(self, physical: str, columns, indexed_columns) -> None:
        parts = [
            "tenant INTEGER NOT NULL",
            f"{ROW} INTEGER NOT NULL",
        ]
        parts += [
            f"{c.lname} {c.type}" + (" NOT NULL" if c.not_null else "")
            for c in columns
        ]
        ddl = (
            f"CREATE TABLE {physical} ("
            + ", ".join(parts)
            + self._alive_ddl()
            + ")"
        )
        indexes = [
            f"CREATE UNIQUE INDEX {physical}_tr ON {physical} (tenant, {ROW})"
        ] + [
            f"CREATE INDEX {physical}_{c.lname} ON {physical} (tenant, {c.lname})"
            for c in indexed_columns
        ]
        self._ensure_table(physical, ddl, indexes)

    def on_table_added(self, table: LogicalTable) -> None:
        super().on_table_added(table)
        self._table_ddl(
            self.base_physical(table.name),
            table.columns,
            [c for c in table.columns if c.indexed],
        )

    def on_extension_added(self, extension: Extension) -> None:
        super().on_extension_added(extension)
        self._table_ddl(
            self.extension_physical(extension.name),
            extension.columns,
            [c for c in extension.columns if c.indexed],
        )

    def on_extension_altered(self, extension, new_columns) -> None:
        """Widen the shared extension table: recreate with the new
        columns and copy rows — the DDL-shaped cost conventional tables
        pay that generic layouts avoid."""
        super().on_extension_altered(extension, new_columns)
        physical = self.extension_physical(extension.name)
        if not self.db.catalog.has_table(physical):
            self._table_ddl(
                physical,
                extension.columns,
                [c for c in extension.columns if c.indexed],
            )
            return
        old_columns = [c.lname for c in self.db.catalog.table(physical).columns]
        if all(c.lname in old_columns for c in new_columns):
            return  # already widened (shared across layout instances)
        rows = self.db.execute(f"SELECT * FROM {physical}").rows
        self._drop_table(physical)
        self._table_ddl(
            physical,
            extension.columns,
            [c for c in extension.columns if c.indexed],
        )
        pad = (None,) * len(new_columns)
        names = ", ".join(old_columns + [c.lname for c in new_columns])
        for row in rows:
            placeholders = ", ".join("?" for _ in row + pad)
            self.db.execute(
                f"INSERT INTO {physical} ({names}) VALUES ({placeholders})",
                list(row + pad),
            )

    # -- fragments -------------------------------------------------------------

    def fragments(self, tenant_id: int, table_name: str) -> list[Fragment]:
        base = self.schema.table(table_name)
        fragments = [
            Fragment(
                table=self.base_physical(table_name),
                meta=(("tenant", tenant_id),),
                columns=tuple(
                    (c.lname, ColumnLoc(c.lname)) for c in base.columns
                ),
                row_column=ROW,
            )
        ]
        for extension in self.schema.extensions_of(tenant_id, table_name):
            fragments.append(
                Fragment(
                    table=self.extension_physical(extension.name),
                    meta=(("tenant", tenant_id),),
                    columns=tuple(
                        (c.lname, ColumnLoc(c.lname)) for c in extension.columns
                    ),
                    row_column=ROW,
                )
            )
        return fragments
