"""Table 1 — Schema Variability and Data Distribution.

Regenerates the paper's configuration table at full scale (10,000
tenants) — pure arithmetic, no database needed — and at the scaled size
the Table 2 benchmark actually runs.
"""

import pytest

from repro.experiments.report import render_table
from repro.testbed.variability import VariabilityConfig

PAPER_ROWS = [
    (0.0, 1, "10,000"),
    (0.5, 5_000, "2"),
    (0.65, 6_500, "1-2"),
    (0.8, 8_000, "1-2"),
    (1.0, 10_000, "1"),
]


def build_table(tenants: int):
    rows = []
    for variability, _, _ in PAPER_ROWS:
        config = VariabilityConfig(variability, tenants)
        counts = config.tenants_per_instance()
        if min(counts) == max(counts):
            spread = str(counts[0])
        else:
            spread = f"{min(counts)}-{max(counts)}"
        rows.append(
            (variability, config.instances, spread, config.total_tables)
        )
    return rows


class TestTable1:
    def test_full_scale_matches_paper(self, benchmark, report):
        rows = build_table(10_000)
        for (v, instances, _), (rv, ri, _, total) in zip(PAPER_ROWS, rows):
            assert rv == v
            assert ri == instances
            assert total == instances * 10
        benchmark.pedantic(build_table, args=(10_000,), rounds=2)
        report(
            "table1_variability",
            render_table(
                "Table 1: Schema Variability and Data Distribution "
                "(10,000 tenants, as in the paper)",
                ["variability", "instances", "tenants/instance", "total tables"],
                rows,
            ),
        )

    def test_scaled_table(self, benchmark, report):
        rows = benchmark.pedantic(build_table, args=(100,), rounds=2)
        report(
            "table1_variability_scaled",
            render_table(
                "Table 1 (scaled: 100 tenants — the size Table 2's bench runs)",
                ["variability", "instances", "tenants/instance", "total tables"],
                rows,
            ),
        )
        assert rows[0][3] == 10
        assert rows[-1][3] == 1000

    def test_benchmark_config_math(self, benchmark):
        def build():
            return build_table(10_000)

        rows = benchmark(build)
        assert len(rows) == 5
