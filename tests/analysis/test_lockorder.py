"""Static lock-order pass (LCK rules)."""

import textwrap

from repro.analysis.lockorder import (
    HIERARCHY,
    MUTATE_LOCK_INVERSION,
    analyze_lock_order,
    build_graph,
)


class TestCleanTree:
    def test_engine_graph_is_acyclic_and_ordered(self):
        report = analyze_lock_order()
        assert report.findings == []
        assert report.checked > 0

    def test_expected_edges_are_extracted(self):
        """The load-bearing acquisition edges must actually be found —
        an extraction bug that finds nothing would also 'pass'."""
        graph = build_graph()
        edges = {(e.src, e.dst) for e in graph.edges}
        for expected in (
            ("heap", "pool"),
            ("btree", "pool"),
            ("catalog", "heap"),
            ("txn", "durability"),
            ("durability", "wal"),
            ("pool", "store"),
        ):
            assert expected in edges, expected

    def test_writeback_wal_override_narrows_the_edge(self):
        """BufferPool calling before_page_write must read as pool→wal
        (the method only flushes the log), not pool→durability — the
        latter would be a false cycle with the checkpoint path."""
        graph = build_graph()
        edges = {(e.src, e.dst) for e in graph.edges}
        assert ("pool", "wal") in edges
        assert ("pool", "durability") not in edges

    def test_every_extracted_resource_is_ranked(self):
        graph = build_graph()
        assert graph.resources <= set(HIERARCHY)


class TestSeededInversion:
    def test_mutation_fires_cycle_and_inversion(self):
        report = analyze_lock_order(mutate=MUTATE_LOCK_INVERSION)
        rules = report.by_rule()
        assert rules.get("LCK001", 0) >= 1
        assert rules.get("LCK002", 0) >= 1
        assert not report.ok

    def test_cycle_message_names_the_loop(self):
        report = analyze_lock_order(mutate=MUTATE_LOCK_INVERSION)
        cycle_findings = [
            f for f in report.findings if f.rule_id == "LCK001"
        ]
        assert any(
            "wal" in f.message and "heap" in f.message
            for f in cycle_findings
        )


class TestScanner:
    def test_synthetic_source_backward_edge(self, tmp_path):
        """A lock-table implementation that calls back into the heap is
        exactly the inversion the pass must flag on real code too."""
        (tmp_path / "bad.py").write_text(
            textwrap.dedent(
                """
                class LockTable:
                    def acquire(self, session_id, resource):
                        self._heap.fetch(resource)
                """
            )
        )
        report = analyze_lock_order(root=str(tmp_path))
        assert report.by_rule().get("LCK002", 0) == 1

    def test_unranked_resource_is_warned(self, tmp_path, monkeypatch):
        import repro.analysis.lockorder as lockorder

        monkeypatch.setitem(lockorder.CLASS_RESOURCES, "GossipBus", "gossip")
        monkeypatch.setitem(lockorder.ATTR_RESOURCES, "gossip", "gossip")
        (tmp_path / "gossip.py").write_text(
            textwrap.dedent(
                """
                class GossipBus:
                    def publish(self):
                        self.pool.read(1)

                class BufferPool:
                    def read(self, page_id):
                        self.gossip.publish()
                """
            )
        )
        report = analyze_lock_order(root=str(tmp_path))
        assert report.by_rule().get("LCK003", 0) == 1
        # gossip is unranked so its edges are skipped by LCK002, but
        # the cycle detector still sees the loop.
        assert report.by_rule().get("LCK001", 0) == 1
