"""Layout invariant checker: coverage, storage typing, meta-row
ownership, row alignment, and migration-plan column preservation."""

import pytest

from repro.analysis import invariants
from repro.analysis.mutation import apply_mutation
from repro.core.layouts.base import TENANT_META

from ..core.conftest import ALL_LAYOUTS, build_running_example


@pytest.mark.parametrize("layout", ALL_LAYOUTS)
def test_running_example_satisfies_invariants(layout):
    mtd = build_running_example(layout)
    report = invariants.check_all(mtd, f"{layout} ")
    assert report.ok, [f.message for f in report.findings]
    assert report.checked >= 1


def test_migration_plan_preserves_columns():
    source = build_running_example("extension")
    logical = source.schema.logical_table(17, "account")
    complete = source.layout.fragments(17, "account")
    report = invariants.check_migration_plan(
        logical.columns, complete, complete, "identity"
    )
    assert report.ok

    # Doctor the target: drop every fragment covering ``beds``.
    lossy = [
        f for f in complete if not f.covers("beds")
    ]
    report = invariants.check_migration_plan(
        logical.columns, complete, lossy, "lossy"
    )
    assert "LAY005" in {f.rule_id for f in report.errors}


def test_rogue_meta_row_is_caught():
    mtd = build_running_example("extension")
    # The healthcare fragment: all its payload columns are nullable, so
    # a bare meta + row insert is enough to plant the rogue row.
    fragment = next(
        f
        for f in mtd.layout.fragments(17, "account")
        if any(col == TENANT_META for col, _ in f.meta)
        and f.covers("hospital")
    )
    names = [col for col, _ in fragment.meta] + [fragment.row_column]
    values = [
        999 if col == TENANT_META else value for col, value in fragment.meta
    ] + [0]
    mtd.db.execute(
        f"INSERT INTO {fragment.table} ({', '.join(names)}) "
        f"VALUES ({', '.join('?' for _ in names)})",
        values,
    )
    report = invariants.check_meta_rows(mtd, "rogue ")
    assert "LAY004" in {f.rule_id for f in report.errors}


def test_row_alignment_gap_is_caught():
    mtd = build_running_example("extension")
    fragments = [
        f
        for f in mtd.layout.fragments(17, "account")
        if f.row_column is not None
    ]
    assert len(fragments) >= 2  # base + healthcare extension
    victim = fragments[-1]
    where = " AND ".join(
        f"{col} = {value!r}" for col, value in victim.meta
    )
    rows = mtd.db.execute(
        f"SELECT {victim.row_column} FROM {victim.table} WHERE {where}"
    ).rows
    assert rows
    mtd.db.execute(
        f"DELETE FROM {victim.table} WHERE {where} "
        f"AND {victim.row_column} = ?",
        (rows[0][0],),
    )
    report = invariants.check_row_alignment(mtd, "gap ")
    assert "LAY006" in {f.rule_id for f in report.errors}


def test_dropped_casts_are_caught_structurally():
    mtd = build_running_example("universal")
    assert invariants.check_fragments(mtd, "pre ").ok
    apply_mutation(mtd, "drop-read-casts")
    report = invariants.check_fragments(mtd, "post ")
    assert "LAY003" in {f.rule_id for f in report.errors}
