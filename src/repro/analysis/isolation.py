"""Pass 2 — tenant-isolation verification of physical statements.

With shape-shared prepared statements (PR 2) one physical statement
serves every tenant, so a single missing ``tenant = ?`` conjunct leaks
every tenant at once.  This pass *proves* the guard discipline
statically: every scan of, join branch over, or DML write-set on a
shared physical table must be dominated by an equality conjunct on each
of the table's meta-data discriminator columns (Tenant, and Table /
Chunk / Col where the layout uses them), at the top level of the
predicate (a guard inside an OR branch dominates nothing).

The discipline differs by statement provenance:

* directly-executed statements (DML fan-out, backfills, migration,
  ``drop_tenant``) carry *literal* meta values — the literal must match
  the tenant the statement was issued for;
* shape-shared cached statements must carry hidden *parameters*
  allocated by :class:`~repro.core.transform.query.TenantParamAllocator`
  in the slot range ``[base_params, base_params + count)`` — a literal
  tenant id frozen into a shared statement serves the wrong tenant for
  everyone else (rule ISO003);
* fused cross-tenant statements (MTSQL ``FOR TENANTS``) declare a
  tenant *set*: every tenant guard must be a literal equality or a
  literal ``tenant IN (...)`` list dominated by the declared set.  This
  is a rule of its own (ISO006), not an exemption — a fused statement
  reading one tenant more than the clause names is exactly the leak the
  single-tenant rules exist to prevent, widened by parameterization.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from ..engine.plan.logical import split_conjuncts
from ..engine.sql import ast
from .findings import AnalysisReport, Finding

#: The meta column whose conjunct carries tenant identity.
TENANT_COLUMN = "tenant"


def shared_table_map(mtd: Any) -> dict[str, frozenset[str]]:
    """Physical table -> required meta discriminator columns.

    Derived from the fragment lists of every (tenant, table) pair:
    a physical table reached through a fragment with meta predicates is
    shared, and every meta column of the fragment must be guarded.
    Private per-tenant tables (empty meta) are exempt.
    """
    shared: dict[str, frozenset[str]] = {}
    for config in mtd.schema.tenants():
        layout = mtd.layout_for(config.tenant_id)
        for table in mtd.schema.tables():
            for fragment in layout.fragments(config.tenant_id, table.name):
                if not fragment.meta:
                    continue
                columns = frozenset(name for name, _ in fragment.meta)
                key = fragment.table.lower()
                shared[key] = shared.get(key, frozenset()) | columns
    return shared


@dataclass(frozen=True)
class GuardContext:
    """How one statement was produced, deciding the guard discipline."""

    #: Tenant the statement was issued for (literals must match);
    #: ``None`` when unknown (skip the ISO005 value check).
    expected_tenant: int | None = None
    #: ``(start, stop)`` slot range of hidden tenant parameters for
    #: shape-shared cached statements; ``None`` for direct statements.
    tenant_param_range: tuple[int, int] | None = None
    #: Declared tenant set of a fused cross-tenant statement: tenant
    #: guards must be literals (or literal IN-lists) dominated by this
    #: set (rule ISO006); ``None`` for single-tenant statements.
    tenant_set: tuple[int, ...] | None = None


class IsolationVerifier:
    """Checks statements against a shared-table map."""

    def __init__(self, shared: dict[str, frozenset[str]]) -> None:
        self.shared = {name.lower(): cols for name, cols in shared.items()}

    # -- public ------------------------------------------------------------

    def check_statement(
        self,
        stmt: ast.Statement,
        context: GuardContext | None = None,
        locus: str = "",
    ) -> AnalysisReport:
        report = AnalysisReport(checked=1)
        self._report = report
        self._context = context or GuardContext()
        self._locus = locus or stmt.sql()
        if isinstance(stmt, ast.Select):
            self._check_select(stmt)
        elif isinstance(stmt, ast.Insert):
            self._check_insert(stmt)
        elif isinstance(stmt, (ast.Update, ast.Delete)):
            self._check_write(stmt)
        return report

    # -- helpers -----------------------------------------------------------

    def _flag(self, rule_id: str, message: str) -> None:
        self._report.add(Finding(rule_id, message, self._locus))

    def _guard_ok(self, rhs: ast.Expr, table: str, meta_col: str) -> bool:
        """Whether one ``meta_col = rhs`` conjunct is an acceptable guard."""
        context = self._context
        is_tenant = meta_col == TENANT_COLUMN
        if isinstance(rhs, ast.InList):
            # A tenant IN-list dominates only for declared cross-tenant
            # statements; anywhere else it is no guard at all.
            if not is_tenant or context.tenant_set is None or rhs.negated:
                return False
            values = [
                item.value
                for item in rhs.items
                if isinstance(item, ast.Literal) and item.value is not None
            ]
            if len(values) != len(rhs.items):
                return False
            outside = sorted(
                set(values) - set(context.tenant_set), key=repr
            )
            if outside:
                self._flag(
                    "ISO006",
                    f"tenant IN-list on {table} includes {outside} beyond "
                    f"the declared tenant set {sorted(context.tenant_set)}",
                )
            return True
        if isinstance(rhs, ast.Literal):
            if rhs.value is None:
                return False
            if (
                is_tenant
                and context.tenant_set is not None
                and rhs.value not in context.tenant_set
            ):
                self._flag(
                    "ISO006",
                    f"tenant guard on {table} binds {rhs.value!r}, outside "
                    f"the declared tenant set {sorted(context.tenant_set)}",
                )
                return True
            if is_tenant and context.tenant_param_range is not None:
                self._flag(
                    "ISO003",
                    f"shape-shared statement hard-codes tenant "
                    f"{rhs.value!r} on {table}",
                )
                return True  # guarded, but for the wrong discipline
            if (
                is_tenant
                and context.expected_tenant is not None
                and rhs.value != context.expected_tenant
            ):
                self._flag(
                    "ISO005",
                    f"{table}.{meta_col} guard binds {rhs.value!r}, "
                    f"statement issued for tenant {context.expected_tenant}",
                )
            return True
        if isinstance(rhs, ast.Param):
            if is_tenant and context.tenant_set is not None:
                # Cross-tenant domination must be checkable statically:
                # a parameter slot could widen the set at bind time.
                self._flag(
                    "ISO006",
                    f"tenant guard on {table} is a parameter; cross-tenant "
                    f"statements must bind the declared set as literals",
                )
                return True
            if is_tenant and context.tenant_param_range is not None:
                start, stop = context.tenant_param_range
                if not (start <= rhs.index < stop):
                    self._flag(
                        "ISO003",
                        f"tenant guard on {table} uses parameter "
                        f"{rhs.index}, outside the allocator range "
                        f"[{start}, {stop})",
                    )
                return True
            if is_tenant:
                self._flag(
                    "ISO001",
                    f"tenant guard on {table} is an unmanaged parameter "
                    f"(no allocator binds it to the tenant)",
                )
                return True  # structurally guarded; provenance flagged
            return True
        return False

    def _collect_guards(
        self, conjuncts: list[ast.Expr]
    ) -> dict[tuple[str | None, str], ast.Expr]:
        """Top-level ``column = constant`` conjuncts by (binding, column).

        ``column IN (...)`` conjuncts are collected as the
        :class:`~repro.engine.sql.ast.InList` node itself — whether an
        IN-list counts as a guard is :meth:`_guard_ok`'s call (only the
        tenant column of declared cross-tenant statements)."""
        guards: dict[tuple[str | None, str], ast.Expr] = {}
        for conjunct in conjuncts:
            if isinstance(conjunct, ast.InList) and isinstance(
                conjunct.operand, ast.ColumnRef
            ):
                ref = conjunct.operand
                binding = ref.table.lower() if ref.table else None
                guards.setdefault((binding, ref.column.lower()), conjunct)
                continue
            if not (
                isinstance(conjunct, ast.BinaryOp) and conjunct.op == "="
            ):
                continue
            for ref, rhs in (
                (conjunct.left, conjunct.right),
                (conjunct.right, conjunct.left),
            ):
                if isinstance(ref, ast.ColumnRef) and isinstance(
                    rhs, (ast.Literal, ast.Param)
                ):
                    binding = ref.table.lower() if ref.table else None
                    guards.setdefault((binding, ref.column.lower()), rhs)
        return guards

    # -- SELECT ------------------------------------------------------------

    def _check_select(self, select: ast.Select) -> None:
        conjuncts = split_conjuncts(select.where)
        guards = self._collect_guards(conjuncts)
        single = len(select.sources) == 1
        for source in select.sources:
            if isinstance(source, ast.SubquerySource):
                self._check_select(source.select)
                continue
            required = self.shared.get(source.name.lower())
            if required is None:
                continue
            binding = source.binding.lower()
            for meta_col in sorted(required):
                rhs = guards.get((binding, meta_col))
                if rhs is None and single:
                    rhs = guards.get((None, meta_col))
                if rhs is None or not self._guard_ok(
                    rhs, source.name, meta_col
                ):
                    rule = "ISO001" if meta_col == TENANT_COLUMN else "ISO004"
                    self._flag(
                        rule,
                        f"scan of shared table {source.name} (as "
                        f"{source.binding}) lacks a dominating "
                        f"{meta_col} = <const> conjunct",
                    )
        for conjunct in conjuncts:
            self._walk_subqueries(conjunct)
        if select.having is not None:
            self._walk_subqueries(select.having)

    def _walk_subqueries(self, expr: ast.Expr) -> None:
        if isinstance(expr, ast.InSubquery):
            self._walk_subqueries(expr.operand)
            self._check_select(expr.subquery)
        elif isinstance(expr, ast.BinaryOp):
            self._walk_subqueries(expr.left)
            self._walk_subqueries(expr.right)
        elif isinstance(expr, (ast.UnaryOp, ast.IsNull)):
            self._walk_subqueries(expr.operand)
        elif isinstance(expr, ast.FuncCall):
            for arg in expr.args:
                self._walk_subqueries(arg)
        elif isinstance(expr, ast.InList):
            self._walk_subqueries(expr.operand)
            for item in expr.items:
                self._walk_subqueries(item)

    # -- DML ---------------------------------------------------------------

    def _check_insert(self, insert: ast.Insert) -> None:
        required = self.shared.get(insert.table.lower())
        if required is None:
            return
        positions = {name.lower(): i for i, name in enumerate(insert.columns)}
        for meta_col in sorted(required):
            position = positions.get(meta_col)
            if position is None:
                self._flag(
                    "ISO002",
                    f"INSERT INTO shared table {insert.table} omits "
                    f"meta column {meta_col}",
                )
                continue
            for row in insert.rows:
                if position >= len(row):
                    continue  # arity error; the semantic pass owns it
                value = row[position]
                if not self._guard_ok(value, insert.table, meta_col):
                    self._flag(
                        "ISO002",
                        f"INSERT INTO shared table {insert.table} writes a "
                        f"non-constant {meta_col}",
                    )

    def _check_write(self, stmt: ast.Update | ast.Delete) -> None:
        required = self.shared.get(stmt.table.lower())
        if required is None:
            if isinstance(stmt, ast.Update):
                for _, value in stmt.assignments:
                    self._walk_subqueries(value)
            if stmt.where is not None:
                self._walk_subqueries(stmt.where)
            return
        conjuncts = split_conjuncts(stmt.where)
        guards = self._collect_guards(conjuncts)
        verb = "UPDATE" if isinstance(stmt, ast.Update) else "DELETE"
        for meta_col in sorted(required):
            rhs = guards.get((None, meta_col)) or guards.get(
                (stmt.table.lower(), meta_col)
            )
            if rhs is None or not self._guard_ok(rhs, stmt.table, meta_col):
                rule = "ISO002" if meta_col == TENANT_COLUMN else "ISO004"
                self._flag(
                    rule,
                    f"{verb} on shared table {stmt.table} lacks a "
                    f"dominating {meta_col} = <const> conjunct",
                )
        for conjunct in conjuncts:
            self._walk_subqueries(conjunct)
