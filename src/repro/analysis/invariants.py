"""Pass 3 — layout invariants over fragments, catalog, and meta rows.

The fragment model (:mod:`repro.core.layouts.base`) makes every layout's
correctness conditions checkable:

* **Coverage** (LAY001/LAY002): the fragments of a (tenant, table) pair
  exactly cover the logical columns — chunk partitions with a gap lose
  data, overlaps write twice and read ambiguously.
* **Type consistency** (LAY003): each fragment column's physical slot
  type and read-side cast must reproduce the logical type — the
  Pivot/Universal/Chunk funnels depend on it.
* **Meta-row agreement** (LAY004): every (Tenant, Table, Chunk, Col)
  combination physically present in a shared table must correspond to a
  fragment of a live tenant — orphans are leaked or stranded data (the
  chunk-layout grant bug fixed in this PR stranded rows exactly here).
* **Row alignment** (LAY006): reconstruction inner-joins fragments on
  Row, so every fragment of a multi-fragment table must hold the same
  Row-id set per tenant; a gap silently drops rows from query results.
* **Migration plans** (LAY005): source and target fragment column sets
  must both equal the logical column set before data moves.
"""

from __future__ import annotations

from typing import Any

from ..engine.values import TypeKind
from .findings import AnalysisReport, Finding

#: Read-side cast -> the TypeKinds it can reproduce.
_CAST_PRODUCES = {
    "TO_INT": {TypeKind.INTEGER, TypeKind.BIGINT},
    "TO_DOUBLE": {TypeKind.DOUBLE},
    "TO_DATE": {TypeKind.DATE},
    "TO_BOOL": {TypeKind.BOOLEAN},
    "TO_STR": {TypeKind.VARCHAR},
}

_INT_FAMILY = {TypeKind.INTEGER, TypeKind.BIGINT}


def _storage_error(
    logical_type: Any, physical_type: Any, cast: str | None
) -> str | None:
    """Why this (physical slot, cast) cannot reproduce the logical type."""
    lk = logical_type.kind
    if cast is not None:
        produced = _CAST_PRODUCES.get(cast.upper())
        if produced is None:
            return f"unknown read cast {cast!r}"
        if lk not in produced:
            return f"cast {cast} cannot produce {lk.value}"
        return None
    pk = physical_type.kind
    if lk == pk:
        if (
            lk is TypeKind.VARCHAR
            and physical_type.length is not None
            and logical_type.length is not None
            and physical_type.length < logical_type.length
        ):
            return (
                f"VARCHAR({physical_type.length}) slot narrower than "
                f"logical VARCHAR({logical_type.length})"
            )
        return None
    if lk in _INT_FAMILY and pk in _INT_FAMILY:
        return None
    return f"{lk.value} stored in {pk.value} slot without a cast"


def check_fragments(mtd: Any, locus_prefix: str = "") -> AnalysisReport:
    """Coverage (LAY001/LAY002) and type consistency (LAY003)."""
    report = AnalysisReport()
    catalog = mtd.db.catalog
    for config in mtd.schema.tenants():
        tenant_id = config.tenant_id
        layout = mtd.layout_for(tenant_id)
        for table in mtd.schema.tables():
            logical = mtd.schema.logical_table(tenant_id, table.name)
            logical_types = {c.lname: c.type for c in logical.columns}
            fragments = layout.fragments(tenant_id, table.name)
            locus = f"{locus_prefix}tenant={tenant_id} table={table.name}"
            report.checked += 1
            provided: dict[str, int] = {}
            for fragment in fragments:
                for name, loc in fragment.columns:
                    provided[name] = provided.get(name, 0) + 1
                    if name not in logical_types:
                        report.add(
                            Finding(
                                "LAY001",
                                f"fragment {fragment.table} stores "
                                f"{name!r}, not a logical column",
                                locus,
                            )
                        )
                        continue
                    physical = catalog.table(fragment.table)
                    if not physical.has_column(loc.physical):
                        report.add(
                            Finding(
                                "LAY003",
                                f"fragment {fragment.table} maps {name!r} "
                                f"to missing column {loc.physical!r}",
                                locus,
                            )
                        )
                        continue
                    column = physical.columns[
                        physical.column_position(loc.physical)
                    ]
                    error = _storage_error(
                        logical_types[name], column.type, loc.cast
                    )
                    if error is not None:
                        report.add(
                            Finding(
                                "LAY003",
                                f"{fragment.table}.{loc.physical} storing "
                                f"{table.name}.{name}: {error}",
                                locus,
                            )
                        )
            missing = [c for c in logical_types if c not in provided]
            if missing:
                report.add(
                    Finding(
                        "LAY001",
                        f"columns {missing} not stored by any fragment",
                        locus,
                    )
                )
            duplicated = [c for c, n in provided.items() if n > 1]
            if duplicated:
                report.add(
                    Finding(
                        "LAY002",
                        f"columns {duplicated} stored by multiple fragments",
                        locus,
                    )
                )
    return report


def _meta_where(meta: tuple[tuple[str, object], ...]) -> str:
    return " AND ".join(f"{col} = {value!r}" for col, value in meta) or "1 = 1"


def check_meta_rows(mtd: Any, locus_prefix: str = "") -> AnalysisReport:
    """Meta-row agreement (LAY004): physically present meta combinations
    must correspond to a fragment of a live tenant with that grant."""
    report = AnalysisReport()
    valid: dict[str, tuple[tuple[str, ...], set[tuple]]] = {}
    for config in mtd.schema.tenants():
        layout = mtd.layout_for(config.tenant_id)
        for table in mtd.schema.tables():
            for fragment in layout.fragments(config.tenant_id, table.name):
                if not fragment.meta:
                    continue
                key = fragment.table.lower()
                columns = tuple(sorted(name for name, _ in fragment.meta))
                entry = valid.setdefault(key, (columns, set()))
                if entry[0] != columns:
                    continue  # inconsistent meta schema; LAY003 territory
                values = dict(fragment.meta)
                entry[1].add(tuple(values[c] for c in columns))
    for table_name, (columns, tuples) in sorted(valid.items()):
        report.checked += 1
        rows = mtd.db.execute(
            f"SELECT DISTINCT {', '.join(columns)} FROM {table_name}"
        ).rows
        for row in rows:
            if tuple(row) not in tuples:
                pairs = ", ".join(
                    f"{c}={v!r}" for c, v in zip(columns, row)
                )
                report.add(
                    Finding(
                        "LAY004",
                        f"{table_name} holds rows for ({pairs}) matching "
                        "no live tenant fragment",
                        f"{locus_prefix}table={table_name}",
                    )
                )
    return report


def check_row_alignment(mtd: Any, locus_prefix: str = "") -> AnalysisReport:
    """Row alignment (LAY006): all fragments of one (tenant, table) pair
    must agree on the Row-id set, or inner joins drop rows."""
    report = AnalysisReport()
    for config in mtd.schema.tenants():
        tenant_id = config.tenant_id
        layout = mtd.layout_for(tenant_id)
        for table in mtd.schema.tables():
            fragments = [
                f
                for f in layout.fragments(tenant_id, table.name)
                if f.row_column is not None
            ]
            if len(fragments) < 2:
                continue
            report.checked += 1
            locus = f"{locus_prefix}tenant={tenant_id} table={table.name}"
            row_sets = []
            for fragment in fragments:
                rows = mtd.db.execute(
                    f"SELECT {fragment.row_column} FROM {fragment.table} "
                    f"WHERE {_meta_where(fragment.meta)}"
                ).rows
                row_sets.append((fragment, {r[0] for r in rows}))
            anchor_fragment, anchor_rows = row_sets[0]
            for fragment, rows in row_sets[1:]:
                missing = anchor_rows - rows
                extra = rows - anchor_rows
                if missing:
                    report.add(
                        Finding(
                            "LAY006",
                            f"{fragment.table} misses {len(missing)} row "
                            f"id(s) present in anchor {anchor_fragment.table} "
                            f"(e.g. {sorted(missing)[:3]})",
                            locus,
                        )
                    )
                if extra:
                    report.add(
                        Finding(
                            "LAY006",
                            f"{fragment.table} holds {len(extra)} row id(s) "
                            f"absent from anchor {anchor_fragment.table}",
                            locus,
                        )
                    )
    return report


def check_migration_plan(
    logical_columns: Any,
    source_fragments: Any,
    target_fragments: Any,
    locus: str = "",
) -> AnalysisReport:
    """Migration preservation (LAY005): both sides store the full
    logical column set, so no column is dropped or invented in flight."""
    report = AnalysisReport(checked=1)
    wanted = {c.lname for c in logical_columns}
    for side, fragments in (
        ("source", source_fragments),
        ("target", target_fragments),
    ):
        stored = {name for f in fragments for name, _ in f.columns}
        missing = sorted(wanted - stored)
        extra = sorted(stored - wanted)
        if missing:
            report.add(
                Finding(
                    "LAY005",
                    f"{side} fragments do not store columns {missing}",
                    locus,
                )
            )
        if extra:
            report.add(
                Finding(
                    "LAY005",
                    f"{side} fragments store extra columns {extra}",
                    locus,
                )
            )
    return report


def check_all(mtd: Any, locus_prefix: str = "") -> AnalysisReport:
    """All data-at-rest invariants for one multi-tenant database."""
    report = check_fragments(mtd, locus_prefix)
    report.extend(check_meta_rows(mtd, locus_prefix))
    report.extend(check_row_alignment(mtd, locus_prefix))
    return report
