"""End-to-end SQL tests against the Database facade."""

import datetime

import pytest

from repro.engine import Database
from repro.engine.errors import (
    DuplicateObjectError,
    NotNullViolation,
    PlanError,
    UniqueViolation,
    UnknownObjectError,
)


@pytest.fixture
def db():
    database = Database()
    database.execute(
        "CREATE TABLE account ("
        "aid INTEGER NOT NULL, tenant INTEGER NOT NULL, "
        "name VARCHAR(50), beds INTEGER, opened DATE)"
    )
    database.execute("CREATE UNIQUE INDEX account_pk ON account (tenant, aid)")
    rows = [
        (1, 17, "Acme", 135, "2001-05-04"),
        (2, 17, "Gump", 1042, "2003-07-12"),
        (1, 35, "Ball", None, "2006-01-30"),
        (1, 42, "Big", 65, "2007-11-11"),
    ]
    for row in rows:
        database.execute(
            "INSERT INTO account VALUES (?, ?, ?, ?, ?)", list(row)
        )
    return database


class TestSelect:
    def test_point_query(self, db):
        result = db.execute(
            "SELECT name FROM account WHERE tenant = ? AND aid = ?", [17, 2]
        )
        assert result.rows == [("Gump",)]

    def test_star(self, db):
        result = db.execute("SELECT * FROM account WHERE tenant = 35")
        assert result.rows == [(1, 35, "Ball", None, datetime.date(2006, 1, 30))]
        assert result.columns == ["aid", "tenant", "name", "beds", "opened"]

    def test_predicates_with_null(self, db):
        result = db.execute("SELECT aid FROM account WHERE beds > 100")
        # NULL beds row must not qualify.
        assert sorted(result.rows) == [(1,), (2,)]

    def test_is_null(self, db):
        result = db.execute("SELECT tenant FROM account WHERE beds IS NULL")
        assert result.rows == [(35,)]

    def test_order_by_desc(self, db):
        result = db.execute(
            "SELECT name FROM account WHERE beds IS NOT NULL ORDER BY beds DESC"
        )
        assert [r[0] for r in result.rows] == ["Gump", "Acme", "Big"]

    def test_limit(self, db):
        result = db.execute("SELECT aid FROM account ORDER BY tenant LIMIT 2")
        assert len(result.rows) == 2

    def test_distinct(self, db):
        result = db.execute("SELECT DISTINCT aid FROM account")
        assert sorted(result.rows) == [(1,), (2,)]

    def test_aggregates(self, db):
        result = db.execute(
            "SELECT COUNT(*), SUM(beds), MIN(beds), MAX(beds), AVG(beds) "
            "FROM account"
        )
        count, total, low, high, avg = result.rows[0]
        assert (count, total, low, high) == (4, 1242, 65, 1042)
        assert avg == pytest.approx(1242 / 3)  # NULL excluded

    def test_group_by_having(self, db):
        result = db.execute(
            "SELECT tenant, COUNT(*) AS n FROM account "
            "GROUP BY tenant HAVING COUNT(*) > 1"
        )
        assert result.rows == [(17, 2)]

    def test_group_by_orders_with_alias(self, db):
        result = db.execute(
            "SELECT tenant, COUNT(*) AS n FROM account GROUP BY tenant "
            "ORDER BY n DESC, tenant"
        )
        assert [r[0] for r in result.rows] == [17, 35, 42]

    def test_global_aggregate_on_empty_input(self, db):
        result = db.execute("SELECT COUNT(*) FROM account WHERE tenant = 99")
        assert result.rows == [(0,)]

    def test_in_list(self, db):
        result = db.execute(
            "SELECT name FROM account WHERE tenant IN (35, 42) ORDER BY name"
        )
        assert [r[0] for r in result.rows] == ["Ball", "Big"]

    def test_in_subquery(self, db):
        result = db.execute(
            "SELECT name FROM account WHERE tenant IN "
            "(SELECT a.tenant FROM account a WHERE a.beds > 1000)"
        )
        assert sorted(r[0] for r in result.rows) == ["Acme", "Gump"]

    def test_like(self, db):
        result = db.execute("SELECT name FROM account WHERE name LIKE 'B%'")
        assert sorted(r[0] for r in result.rows) == ["Ball", "Big"]

    def test_between(self, db):
        result = db.execute(
            "SELECT name FROM account WHERE beds BETWEEN 100 AND 200"
        )
        assert result.rows == [("Acme",)]

    def test_arithmetic_in_select(self, db):
        result = db.execute(
            "SELECT beds + 1 FROM account WHERE tenant = 17 AND aid = 1"
        )
        assert result.rows == [(136,)]

    def test_count_distinct(self, db):
        result = db.execute("SELECT COUNT(DISTINCT aid) FROM account")
        assert result.rows == [(2,)]

    def test_self_join(self, db):
        result = db.execute(
            "SELECT a.name, b.name FROM account a, account b "
            "WHERE a.tenant = b.tenant AND a.aid = 1 AND b.aid = 2"
        )
        assert result.rows == [("Acme", "Gump")]

    def test_date_comparison(self, db):
        result = db.execute(
            "SELECT name FROM account WHERE opened < '2004-01-01' ORDER BY name"
        )
        assert [r[0] for r in result.rows] == ["Acme", "Gump"]


class TestDml:
    def test_insert_with_columns(self, db):
        db.execute(
            "INSERT INTO account (aid, tenant, name) VALUES (?, ?, ?)",
            [9, 99, "New"],
        )
        result = db.execute("SELECT beds FROM account WHERE tenant = 99")
        assert result.rows == [(None,)]

    def test_insert_duplicate_key_rejected(self, db):
        with pytest.raises(UniqueViolation):
            db.execute(
                "INSERT INTO account VALUES (?, ?, ?, ?, ?)",
                [1, 17, "Dup", 1, "2008-01-01"],
            )

    def test_not_null_enforced(self, db):
        with pytest.raises(NotNullViolation):
            db.execute(
                "INSERT INTO account (aid, name) VALUES (?, ?)", [5, "NoTenant"]
            )

    def test_update_by_key(self, db):
        count = db.execute(
            "UPDATE account SET beds = ? WHERE tenant = ? AND aid = ?",
            [200, 17, 1],
        ).rowcount
        assert count == 1
        assert db.execute(
            "SELECT beds FROM account WHERE tenant = 17 AND aid = 1"
        ).rows == [(200,)]

    def test_update_expression_sees_old_row(self, db):
        db.execute("UPDATE account SET beds = beds + aid WHERE tenant = 17")
        result = db.execute(
            "SELECT beds FROM account WHERE tenant = 17 ORDER BY aid"
        )
        assert result.rows == [(136,), (1044,)]

    def test_update_indexed_column_keeps_index_consistent(self, db):
        db.execute(
            "UPDATE account SET aid = ? WHERE tenant = ? AND aid = ?", [7, 42, 1]
        )
        assert db.execute(
            "SELECT name FROM account WHERE tenant = 42 AND aid = 7"
        ).rows == [("Big",)]
        assert (
            db.execute(
                "SELECT name FROM account WHERE tenant = 42 AND aid = 1"
            ).rows
            == []
        )

    def test_delete(self, db):
        assert db.execute("DELETE FROM account WHERE tenant = 17").rowcount == 2
        assert db.execute("SELECT COUNT(*) FROM account").rows == [(2,)]

    def test_delete_everything(self, db):
        assert db.execute("DELETE FROM account").rowcount == 4

    def test_multi_row_insert(self, db):
        count = db.execute(
            "INSERT INTO account (aid, tenant) VALUES (10, 1), (11, 1), (12, 1)"
        ).rowcount
        assert count == 3


class TestDdl:
    def test_duplicate_table_rejected(self, db):
        with pytest.raises(DuplicateObjectError):
            db.execute("CREATE TABLE account (x INTEGER)")

    def test_unknown_table_rejected(self, db):
        with pytest.raises(UnknownObjectError):
            db.execute("SELECT * FROM missing")

    def test_unknown_column_rejected(self, db):
        with pytest.raises(UnknownObjectError):
            db.execute("SELECT missing FROM account")

    def test_drop_table_frees_metadata(self, db):
        before = db.catalog.metadata_bytes
        db.execute("DROP TABLE account")
        assert db.catalog.metadata_bytes < before
        with pytest.raises(UnknownObjectError):
            db.execute("SELECT * FROM account")

    def test_create_index_backfills(self, db):
        db.execute("CREATE INDEX account_beds ON account (beds)")
        info = db.catalog.table("account").indexes["account_beds"]
        assert info.btree.entry_count == 4

    def test_metadata_shrinks_buffer_pool(self):
        small = Database(memory_bytes=256 * 1024)
        before = small.buffer_pool_pages
        for i in range(20):
            small.execute(f"CREATE TABLE t{i} (x INTEGER)")
        assert small.buffer_pool_pages < before

    def test_explain_only_for_select(self, db):
        with pytest.raises(PlanError):
            db.explain("DELETE FROM account")


class TestStatsAccounting:
    def test_point_query_reads_few_pages(self, db):
        before = db.pool_stats.snapshot()
        db.execute("SELECT name FROM account WHERE tenant = 17 AND aid = 1")
        delta = db.pool_stats.delta(before)
        assert 0 < delta.logical_total <= 4

    def test_cold_cache_costs_physical_reads(self, db):
        db.execute("SELECT name FROM account WHERE tenant = 17 AND aid = 1")
        db.flush_cache()
        before = db.pool_stats.snapshot()
        db.execute("SELECT name FROM account WHERE tenant = 17 AND aid = 1")
        delta = db.pool_stats.delta(before)
        assert delta.physical_total == delta.logical_total > 0


class TestCloseLifecycle:
    """close() must be unconditionally safe: shard workers tear engines
    down in error paths without knowing how far the open got."""

    def _open_fds_under(self, root: str) -> list[str]:
        import os

        fds = []
        for fd in os.listdir("/proc/self/fd"):
            try:
                target = os.readlink(f"/proc/self/fd/{fd}")
            except OSError:
                continue
            if target.startswith(root):
                fds.append(target)
        return fds

    def test_close_idempotent_memory_mode(self):
        db = Database()
        db.execute("CREATE TABLE t (id INTEGER)")
        db.close()
        db.close()

    def test_close_idempotent_durable_mode(self, tmp_path):
        path = str(tmp_path / "d")
        db = Database(path=path)
        db.execute("CREATE TABLE t (id INTEGER)")
        db.execute("INSERT INTO t VALUES (1)")
        db.close()
        db.close()
        assert not self._open_fds_under(path)
        again = Database(path=path)
        assert again.execute("SELECT id FROM t").rows == [(1,)]
        again.close()
        again.close()

    def test_failed_open_releases_files(self, tmp_path, monkeypatch):
        import repro.engine.durability.recovery as recovery_mod

        path = str(tmp_path / "d")
        first = Database(path=path)
        first.execute("CREATE TABLE t (id INTEGER)")
        first.close()

        def boom(db):
            raise RuntimeError("simulated recovery failure")

        monkeypatch.setattr(recovery_mod, "recover", boom)
        with pytest.raises(RuntimeError):
            Database(path=path)
        monkeypatch.undo()
        assert not self._open_fds_under(path)
        # The directory is reusable after the failed open.
        db = Database(path=path)
        assert db.execute("SELECT COUNT(*) FROM t").rows == [(0,)]
        db.close()
