"""Unit tests for the vectorized executor and its batch compiler.

The broad row/stats equivalence versus the tuple engine lives in the
differential suites (``test_differential_sqlite.py`` cross-engine class,
``tests/core/test_property_equivalence.py``); this file covers the
machinery itself: the execution-mode switch, plan-cache keying across
engines, the batch-size knob, batch metrics, EXPLAIN ANALYZE parity,
and the edge cases batching could plausibly get wrong (LIMIT cutoffs
inside a batch, NULL join keys, mixed-direction ORDER BY, empty
inputs).
"""

import pytest

from repro.engine import Database
from repro.engine.errors import EngineError
from repro.engine.executor import Executor
from repro.engine.vexecutor import VectorizedExecutor


def make_db(**kwargs) -> Database:
    db = Database(**kwargs)
    db.execute(
        "CREATE TABLE t (id INTEGER NOT NULL, g INTEGER, v INTEGER, "
        "name VARCHAR(20))"
    )
    db.execute("CREATE UNIQUE INDEX t_pk ON t (id)")
    for i in range(1, 101):
        db.execute(
            "INSERT INTO t VALUES (?, ?, ?, ?)",
            [i, i % 5, (i * 7) % 23 if i % 11 else None, f"n{i % 13}"],
        )
    return db


class TestExecutionMode:
    def test_vectorized_is_the_default(self):
        db = Database()
        assert db.execution == "vectorized"
        assert isinstance(db._executor, VectorizedExecutor)

    def test_switching_engines(self):
        db = make_db()
        db.execution = "tuple"
        assert isinstance(db._executor, Executor)
        db.execution = "vectorized"
        assert isinstance(db._executor, VectorizedExecutor)

    def test_unknown_mode_rejected(self):
        db = Database()
        with pytest.raises(EngineError):
            db.execution = "columnar"

    def test_stats_are_shared_across_engines(self):
        db = make_db()
        before = db.exec_stats.statements
        db.execute("SELECT COUNT(*) FROM t")
        db.execution = "tuple"
        db.execute("SELECT COUNT(*) FROM t")
        assert db.exec_stats.statements == before + 2

    def test_cached_plan_never_crosses_engines(self):
        db = make_db()
        sql = "SELECT g, COUNT(*) FROM t GROUP BY g"
        db.execute(sql)
        prepared = db._statements.get(sql)
        assert prepared is not None and prepared.execution == "vectorized"
        invalidations = db.metrics.counter("db.plan_cache.invalidations")
        before = invalidations.value
        db.execution = "tuple"
        db.execute(sql)
        assert prepared.execution == "tuple"
        assert invalidations.value == before + 1


class TestBatchSizes:
    @pytest.mark.parametrize("batch_rows", [1, 2, 7, 256, 10_000])
    def test_any_batch_size_same_answers(self, batch_rows):
        db = make_db(batch_rows=batch_rows)
        reference = make_db(execution="tuple")
        for sql in (
            "SELECT id FROM t WHERE g = 3 ORDER BY id",
            "SELECT g, COUNT(*), SUM(v), MIN(name) FROM t GROUP BY g",
            "SELECT DISTINCT name FROM t",
            "SELECT id FROM t ORDER BY v DESC, id LIMIT 9",
        ):
            assert db.execute(sql).rows == reference.execute(sql).rows, sql

    def test_limit_cuts_inside_a_batch(self):
        db = make_db(batch_rows=8)
        rows = db.execute("SELECT id FROM t ORDER BY id LIMIT 11").rows
        assert rows == [(i,) for i in range(1, 12)]

    def test_limit_zero(self):
        db = make_db()
        assert db.execute("SELECT id FROM t ORDER BY id LIMIT 0").rows == []


class TestBatchMetrics:
    def test_batches_counter_and_histogram(self):
        db = make_db()
        before = db.metrics.counter("db.exec.batches").value
        db.execute("SELECT g, COUNT(*) FROM t GROUP BY g")
        counter = db.metrics.counter("db.exec.batches")
        histogram = db.metrics.histogram("mt.exec.batch_rows")
        assert counter.value > before
        assert histogram.count > 0
        assert db.exec_stats.batches > 0

    def test_tuple_engine_advances_no_batches(self):
        db = make_db(execution="tuple")
        db.execute("SELECT g, COUNT(*) FROM t GROUP BY g")
        assert db.exec_stats.batches == 0

    def test_trace_surfaces_batches(self):
        db = make_db()
        trace = db.trace("SELECT COUNT(*) FROM t")
        assert trace.exec.batches > 0
        assert "batches=" in trace.render()


class TestAnalyzeParity:
    def test_explain_analyze_rows_match_tuple_engine(self):
        sql = (
            "SELECT a.g, COUNT(*) FROM t a, t b "
            "WHERE a.id = b.id AND a.g = 2 GROUP BY a.g"
        )

        def operator_rows(db):
            trace = db.trace(sql, analyze=True)
            return [(op.op_name, op.rows) for op in trace.operators]

        assert operator_rows(make_db()) == operator_rows(
            make_db(execution="tuple")
        )


class TestBatchedEdgeCases:
    def test_null_join_keys_never_match(self):
        db = Database()
        db.execute("CREATE TABLE l (k INTEGER, x INTEGER)")
        db.execute("CREATE TABLE r (k INTEGER, y INTEGER)")
        for k, x in [(1, 10), (None, 20), (2, 30)]:
            db.execute("INSERT INTO l VALUES (?, ?)", [k, x])
        for k, y in [(1, 100), (None, 200), (3, 300)]:
            db.execute("INSERT INTO r VALUES (?, ?)", [k, y])
        rows = db.execute(
            "SELECT l.x, r.y FROM l, r WHERE l.k = r.k"
        ).rows
        assert rows == [(10, 100)]

    def test_global_aggregate_over_empty_input(self):
        db = Database()
        db.execute("CREATE TABLE e (a INTEGER)")
        assert db.execute(
            "SELECT COUNT(*), SUM(a), MIN(a) FROM e"
        ).rows == [(0, None, None)]

    def test_mixed_direction_order_by(self):
        db = make_db()
        reference = make_db(execution="tuple")
        sql = "SELECT g, id FROM t ORDER BY g DESC, id ASC"
        ours = db.execute(sql).rows
        assert ours == reference.execute(sql).rows
        assert ours[0][0] == 4 and ours[0][1] < ours[1][1]

    def test_order_by_with_nulls(self):
        db = make_db()
        reference = make_db(execution="tuple")
        sql = "SELECT v, id FROM t ORDER BY v, id"
        ours = db.execute(sql).rows
        assert ours == reference.execute(sql).rows
        assert ours[0][0] is None  # NULLs sort first, both engines

    def test_count_distinct_and_avg(self):
        db = make_db()
        reference = make_db(execution="tuple")
        sql = "SELECT g, COUNT(DISTINCT name), AVG(v) FROM t GROUP BY g"
        assert db.execute(sql).rows == reference.execute(sql).rows


class TestHeapScanBatches:
    def test_scan_batches_matches_scan(self):
        db = make_db()
        heap = db.catalog.table("t").heap
        rows = [row for _rid, row in heap.scan()]
        for batch_rows in (1, 16, 1000):
            batches = list(heap.scan_batches(batch_rows))
            assert [r for batch in batches for r in batch] == rows
            assert all(len(batch) <= batch_rows for batch in batches)

    def test_scan_batches_same_page_accounting(self):
        db = make_db()
        heap = db.catalog.table("t").heap
        before = db.pool_stats.snapshot()
        list(heap.scan())
        via_scan = db.pool_stats.delta(before).logical_total
        before = db.pool_stats.snapshot()
        list(heap.scan_batches(64))
        assert db.pool_stats.delta(before).logical_total == via_scan
