"""Ablation — the chunk-table meta-data budget (shape covers).

Chunk Folding's premise is a bounded "meta-data budget": when the
distinct chunk shapes exceed the number of Chunk Tables the database
can afford, shapes must share tables, padding narrower chunks with
NULLs.  This ablation sweeps the shape budget for a mixed-shape tenant
fleet and reports the table-count / slot-waste / query-cost trade-off.
Also compares the greedy `FoldingPlanner`'s hot/cold split levels.
"""

import pytest

from repro import Extension, FoldingPlanner, LogicalColumn, LogicalTable, MultiTenantDatabase
from repro.core.folding import (
    ChunkShape,
    partition_columns,
    select_cover_shapes,
    total_waste,
)
from repro.engine.values import DATE, DOUBLE, INTEGER, varchar
from repro.experiments.report import render_table


def mixed_demand():
    """Chunk-shape demand from a fleet of differently-shaped tables."""
    tables = {
        "orders": [
            LogicalColumn("a", INTEGER),
            LogicalColumn("b", INTEGER),
            LogicalColumn("c", varchar(40)),
            LogicalColumn("d", DATE),
        ],
        "notes": [
            LogicalColumn("x", varchar(80)),
            LogicalColumn("y", varchar(80)),
        ],
        "metrics": [
            LogicalColumn("m1", DOUBLE),
            LogicalColumn("m2", DOUBLE),
            LogicalColumn("m3", INTEGER),
        ],
        "events": [
            LogicalColumn("t", DATE),
            LogicalColumn("kind", varchar(20)),
            LogicalColumn("weight", INTEGER),
        ],
    }
    demand: dict[ChunkShape, int] = {}
    weights = {"orders": 100, "notes": 40, "metrics": 70, "events": 25}
    for name, columns in tables.items():
        for assignment in partition_columns(columns, width=3):
            demand[assignment.shape] = (
                demand.get(assignment.shape, 0) + weights[name]
            )
    return demand


class TestShapeBudgetAblation:
    @pytest.fixture(scope="class")
    def sweep(self):
        demand = mixed_demand()
        out = {}
        for budget in (len(demand), 3, 2, 1):
            covers = select_cover_shapes(demand, budget)
            out[budget] = (len(covers), total_waste(demand, covers))
        return demand, out

    def test_report(self, benchmark, sweep, report):
        demand, out = sweep
        benchmark.pedantic(
            select_cover_shapes, args=(demand, 2), rounds=3
        )
        rows = [
            (budget, tables, waste) for budget, (tables, waste) in out.items()
        ]
        report(
            "ablation_shape_budget",
            render_table(
                "Ablation: chunk-table budget vs. weighted slot waste",
                ["shape budget", "chunk tables", "weighted NULL-slot waste"],
                rows,
            ),
        )

    def test_waste_monotone_in_budget(self, sweep):
        _, out = sweep
        budgets = sorted(out, reverse=True)
        wastes = [out[b][1] for b in budgets]
        assert wastes == sorted(wastes)

    def test_full_budget_wastes_nothing(self, sweep):
        demand, out = sweep
        assert out[len(demand)][1] == 0


class TestUtilizationPlannerAblation:
    """Hot-fraction sweep for the utilization-driven folding planner:
    keeping more hot columns conventional trades meta-data (more
    conventional columns) against reconstruction joins."""

    def build(self, hot_fraction: float) -> MultiTenantDatabase:
        planner = FoldingPlanner(hot_fraction=hot_fraction, chunk_width=2)
        for column in ("id", "name", "status"):
            for _ in range(50):
                planner.record_access("doc", column)
        mtd = MultiTenantDatabase(
            layout="chunk_folding", width=2, planner=planner
        )
        mtd.define_table(
            LogicalTable(
                "doc",
                (
                    LogicalColumn("id", INTEGER, indexed=True, not_null=True),
                    LogicalColumn("name", varchar(40)),
                    LogicalColumn("status", varchar(10)),
                    LogicalColumn("body", varchar(100)),
                    LogicalColumn("created", DATE),
                    LogicalColumn("size", INTEGER),
                ),
            )
        )
        mtd.create_tenant(1)
        for i in range(40):
            mtd.insert(
                1,
                "doc",
                {
                    "id": i,
                    "name": f"d{i}",
                    "status": "open" if i % 2 else "done",
                    "body": "x" * 80,
                    "created": "2008-01-01",
                    "size": i,
                },
            )
        return mtd

    def measure_hot_query(self, mtd) -> int:
        sql = "SELECT name FROM doc WHERE id = ?"
        mtd.execute(1, sql, [7])
        before = mtd.db.pool_stats.snapshot()
        mtd.execute(1, sql, [7])
        return mtd.db.pool_stats.delta(before).logical_total

    @pytest.fixture(scope="class")
    def fleets(self):
        return {f: self.build(f) for f in (0.0, 0.5, 1.0)}

    def test_report(self, benchmark, fleets, report):
        benchmark.pedantic(lambda: None, rounds=1)
        rows = []
        for fraction, mtd in fleets.items():
            conventional_cols = len(
                mtd.db.catalog.table("doc_cf").columns
            ) - 2  # minus tenant, row
            rows.append(
                (
                    fraction,
                    conventional_cols,
                    mtd.db.catalog.table_count,
                    self.measure_hot_query(mtd),
                )
            )
        report(
            "ablation_hot_fraction",
            render_table(
                "Ablation: FoldingPlanner hot fraction",
                [
                    "hot fraction",
                    "conventional columns",
                    "tables",
                    "hot-query reads",
                ],
                rows,
            ),
        )

    def test_hot_query_cheapest_when_hot_columns_conventional(self, fleets):
        assert self.measure_hot_query(fleets[1.0]) <= self.measure_hot_query(
            fleets[0.0]
        )

    def test_lower_fraction_folds_more(self, fleets):
        cols = {
            f: len(m.db.catalog.table("doc_cf").columns) for f, m in fleets.items()
        }
        assert cols[0.0] <= cols[0.5] <= cols[1.0]

    def test_all_fractions_answer_identically(self, fleets):
        sql = "SELECT id, name, status, size FROM doc WHERE status = 'open'"
        reference = None
        for mtd in fleets.values():
            rows = sorted(mtd.execute(1, sql).rows)
            if reference is None:
                reference = rows
            else:
                assert rows == reference
