"""Tokenizer for the SQL subset."""

from __future__ import annotations

import enum
import re
from dataclasses import dataclass

from ..errors import ParseError


class TokenKind(enum.Enum):
    KEYWORD = "keyword"
    IDENT = "ident"
    NUMBER = "number"
    STRING = "string"
    PARAM = "param"
    OP = "op"
    PUNCT = "punct"
    EOF = "eof"


KEYWORDS = {
    "SELECT", "DISTINCT", "FROM", "WHERE", "GROUP", "BY", "HAVING", "ORDER",
    "LIMIT", "AS", "AND", "OR", "NOT", "IN", "IS", "NULL", "TRUE", "FALSE",
    "JOIN", "INNER", "LEFT", "OUTER", "ON", "ASC", "DESC", "INSERT", "INTO",
    "VALUES", "UPDATE", "SET", "DELETE", "CREATE", "DROP", "TABLE", "INDEX",
    "UNIQUE", "BETWEEN", "LIKE", "CASE", "WHEN", "THEN", "ELSE", "END",
}

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<string>'(?:[^']|'')*')
  | (?P<number>\d+(?:\.\d+)?)
  | (?P<ident>[A-Za-z_][A-Za-z_0-9$]*)
  | (?P<param>\?)
  | (?P<op><>|<=|>=|=|<|>|\|\||[+\-*/])
  | (?P<punct>[(),.;])
    """,
    re.VERBOSE,
)


@dataclass(frozen=True)
class Token:
    kind: TokenKind
    text: str
    position: int

    def matches(self, *keywords: str) -> bool:
        return self.kind is TokenKind.KEYWORD and self.text in keywords


def tokenize(sql: str) -> list[Token]:
    """Tokenize SQL text; raises :class:`ParseError` on garbage."""
    tokens: list[Token] = []
    pos = 0
    n = len(sql)
    while pos < n:
        match = _TOKEN_RE.match(sql, pos)
        if match is None:
            raise ParseError(f"unexpected character {sql[pos]!r}", pos)
        pos = match.end()
        if match.lastgroup == "ws":
            continue
        text = match.group()
        if match.lastgroup == "string":
            tokens.append(
                Token(TokenKind.STRING, text[1:-1].replace("''", "'"), match.start())
            )
        elif match.lastgroup == "number":
            tokens.append(Token(TokenKind.NUMBER, text, match.start()))
        elif match.lastgroup == "ident":
            upper = text.upper()
            if upper in KEYWORDS:
                tokens.append(Token(TokenKind.KEYWORD, upper, match.start()))
            else:
                tokens.append(Token(TokenKind.IDENT, text, match.start()))
        elif match.lastgroup == "param":
            tokens.append(Token(TokenKind.PARAM, "?", match.start()))
        elif match.lastgroup == "op":
            tokens.append(Token(TokenKind.OP, text, match.start()))
        else:
            tokens.append(Token(TokenKind.PUNCT, text, match.start()))
    tokens.append(Token(TokenKind.EOF, "", n))
    return tokens
